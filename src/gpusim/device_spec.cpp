#include "gpusim/device_spec.h"

#include <type_traits>

namespace starsim::gpusim {

namespace {

/// FNV-1a, matching the serving layer's fingerprint constants so all
/// repo-wide identity hashes behave alike (no cross-seeding — the hashed
/// domains never mix).
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::uint64_t DeviceSpec::fingerprint() const {
  Fnv1a h;
  h.bytes(name.data(), name.size());
  h.value(sm_count);
  h.value(cores_per_sm);
  h.value(core_clock_ghz);
  h.value(warp_size);
  h.value(max_threads_per_block);
  h.value(max_block_dim_x);
  h.value(max_block_dim_y);
  h.value(max_block_dim_z);
  h.value(max_grid_blocks);
  h.value(max_resident_warps_per_sm);
  h.value(max_resident_blocks_per_sm);
  h.value(global_memory_bytes);
  h.value(shared_memory_per_block);
  h.value(texture_cache_bytes_per_sm);
  h.value(texture_cache_line_bytes);
  h.value(texture_cache_associativity);
  h.value(fp64_flops_per_cycle_per_sm);
  h.value(issue_efficiency);
  h.value(exp_flop_equiv);
  h.value(pow_flop_equiv);
  h.value(sqrt_flop_equiv);
  h.value(erf_flop_equiv);
  h.value(shared_memory_banks);
  h.value(shared_bank_width_bytes);
  h.value(global_transaction_bytes);
  h.value(global_latency_cycles);
  h.value(global_bandwidth_gbps);
  h.value(shared_accesses_per_cycle_per_sm);
  h.value(shared_conflict_cycles);
  h.value(texture_fetches_per_cycle_per_sm);
  h.value(texture_miss_latency_cycles);
  h.value(atomic_ops_per_cycle_per_sm);
  h.value(atomic_conflict_retry_cycles);
  h.value(barrier_cycles);
  h.value(divergence_penalty_cycles);
  h.value(warps_to_saturate_per_sm);
  h.value(kernel_launch_overhead_s);
  h.value(pcie_latency_s);
  h.value(pcie_bandwidth_gbps);
  h.value(pcie_pinned_bandwidth_gbps);
  h.value(texture_bind_s);
  return h.hash();
}

DeviceSpec DeviceSpec::gtx480() {
  DeviceSpec spec;  // defaults are the GTX480 values
  spec.name = "GTX480 (modeled)";
  return spec;
}

DeviceSpec DeviceSpec::gtx580() {
  DeviceSpec spec = gtx480();
  spec.name = "GTX580 (modeled)";
  spec.sm_count = 16;
  spec.core_clock_ghz = 1.544;
  spec.global_bandwidth_gbps = 192.4;
  return spec;
}

DeviceSpec DeviceSpec::k20() {
  DeviceSpec spec;
  spec.name = "Tesla K20 (modeled)";
  spec.sm_count = 13;
  spec.cores_per_sm = 192;
  spec.core_clock_ghz = 0.706;
  spec.global_memory_bytes = 5ull << 30;
  spec.global_bandwidth_gbps = 208.0;
  // 1.17 TFLOPS fp64 peak: 1170e9 / 13 SMX / 0.706 GHz.
  spec.fp64_flops_per_cycle_per_sm = 127.5;
  spec.max_resident_warps_per_sm = 64;
  spec.max_resident_blocks_per_sm = 16;
  spec.warps_to_saturate_per_sm = 32;
  spec.texture_cache_bytes_per_sm = 48 << 10;  // read-only data cache
  spec.texture_fetches_per_cycle_per_sm = 4.0;
  spec.atomic_ops_per_cycle_per_sm = 2.0;  // Kepler's rewritten atomics
  spec.kernel_launch_overhead_s = 5e-6;
  spec.pcie_bandwidth_gbps = 5.0;  // PCIe gen2 x16 host of the era
  spec.pcie_pinned_bandwidth_gbps = 6.2;
  return spec;
}

DeviceSpec DeviceSpec::test_small() {
  DeviceSpec spec;
  spec.name = "test-small";
  spec.sm_count = 2;
  spec.global_memory_bytes = 1 << 20;  // 1 MiB: easy to exhaust in tests
  spec.shared_memory_per_block = 1 << 10;
  spec.texture_cache_bytes_per_sm = 256;
  spec.max_threads_per_block = 64;
  spec.max_block_dim_x = 64;
  spec.max_block_dim_y = 64;
  spec.max_block_dim_z = 8;
  spec.max_grid_blocks = 4096;
  return spec;
}

}  // namespace starsim::gpusim
