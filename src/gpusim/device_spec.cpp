#include "gpusim/device_spec.h"

namespace starsim::gpusim {

DeviceSpec DeviceSpec::gtx480() {
  DeviceSpec spec;  // defaults are the GTX480 values
  spec.name = "GTX480 (modeled)";
  return spec;
}

DeviceSpec DeviceSpec::gtx580() {
  DeviceSpec spec = gtx480();
  spec.name = "GTX580 (modeled)";
  spec.sm_count = 16;
  spec.core_clock_ghz = 1.544;
  spec.global_bandwidth_gbps = 192.4;
  return spec;
}

DeviceSpec DeviceSpec::k20() {
  DeviceSpec spec;
  spec.name = "Tesla K20 (modeled)";
  spec.sm_count = 13;
  spec.cores_per_sm = 192;
  spec.core_clock_ghz = 0.706;
  spec.global_memory_bytes = 5ull << 30;
  spec.global_bandwidth_gbps = 208.0;
  // 1.17 TFLOPS fp64 peak: 1170e9 / 13 SMX / 0.706 GHz.
  spec.fp64_flops_per_cycle_per_sm = 127.5;
  spec.max_resident_warps_per_sm = 64;
  spec.max_resident_blocks_per_sm = 16;
  spec.warps_to_saturate_per_sm = 32;
  spec.texture_cache_bytes_per_sm = 48 << 10;  // read-only data cache
  spec.texture_fetches_per_cycle_per_sm = 4.0;
  spec.atomic_ops_per_cycle_per_sm = 2.0;  // Kepler's rewritten atomics
  spec.kernel_launch_overhead_s = 5e-6;
  spec.pcie_bandwidth_gbps = 5.0;  // PCIe gen2 x16 host of the era
  spec.pcie_pinned_bandwidth_gbps = 6.2;
  return spec;
}

DeviceSpec DeviceSpec::test_small() {
  DeviceSpec spec;
  spec.name = "test-small";
  spec.sm_count = 2;
  spec.global_memory_bytes = 1 << 20;  // 1 MiB: easy to exhaust in tests
  spec.shared_memory_per_block = 1 << 10;
  spec.texture_cache_bytes_per_sm = 256;
  spec.max_threads_per_block = 64;
  spec.max_block_dim_x = 64;
  spec.max_block_dim_y = 64;
  spec.max_block_dim_z = 8;
  spec.max_grid_blocks = 4096;
  return spec;
}

}  // namespace starsim::gpusim
