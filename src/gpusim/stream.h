// CUDA-stream timing model.
//
// The paper notes its transmission overhead "should be eliminated as low as
// possible by applying some CUDA transmission optimization strategy" (its
// reference [10], the CUDA programming guide). The canonical strategy is
// stream overlap: operations in different streams may run concurrently as
// long as each hardware engine (the PCIe copy engine(s) and the compute
// engine) serves one operation at a time, while operations within a stream
// stay ordered. StreamScheduler reproduces that first-order timing model:
// ops are enqueued with their modeled durations (from the transfer/perf
// models) and scheduled FIFO per engine, yielding the pipelined makespan.
//
// The GTX480 exposes one copy engine, so H2D and D2H serialize against each
// other there; newer parts with dual copy engines are expressible via the
// constructor.
#pragma once

#include <cstdint>
#include <vector>

namespace starsim::gpusim {

class FaultInjector;

/// Opaque stream identifier.
struct StreamId {
  std::uint32_t index = 0xffffffffu;
  [[nodiscard]] bool valid() const { return index != 0xffffffffu; }
  bool operator==(const StreamId&) const = default;
};

class StreamScheduler {
 public:
  enum class Engine { kCopyH2D, kCompute, kCopyD2H };

  /// `copy_engines`: 1 (Fermi) serializes H2D and D2H on one engine;
  /// 2 gives each direction its own engine.
  explicit StreamScheduler(int copy_engines = 1);

  [[nodiscard]] StreamId create_stream();
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }

  /// Attach a fault-injection oracle consulted at every enqueue (modeled
  /// stream-resource exhaustion; see gpusim/fault_injector.h). nullptr
  /// detaches. Non-owning.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Enqueue an operation of `duration_s` on `stream`; returns its modeled
  /// completion time (seconds since the scheduler epoch).
  double enqueue(StreamId stream, Engine engine, double duration_s);

  // Convenience wrappers.
  double enqueue_h2d(StreamId stream, double duration_s) {
    return enqueue(stream, Engine::kCopyH2D, duration_s);
  }
  double enqueue_kernel(StreamId stream, double duration_s) {
    return enqueue(stream, Engine::kCompute, duration_s);
  }
  double enqueue_d2h(StreamId stream, double duration_s) {
    return enqueue(stream, Engine::kCopyD2H, duration_s);
  }

  /// Completion time of the last operation enqueued on `stream`.
  [[nodiscard]] double stream_end(StreamId stream) const;

  /// Makespan: completion time of the latest operation on any engine
  /// (cudaDeviceSynchronize's return time).
  [[nodiscard]] double makespan() const;

  /// Total busy time per engine (for utilization reporting).
  [[nodiscard]] double engine_busy(Engine engine) const;

  /// Forget all enqueued work, keep the streams.
  void reset();

 private:
  struct EngineState {
    double available_at = 0.0;
    double busy = 0.0;
  };

  EngineState& engine_state(Engine engine);
  [[nodiscard]] const EngineState& engine_state(Engine engine) const;

  int copy_engines_;
  FaultInjector* injector_ = nullptr;  // non-owning, may be null
  EngineState h2d_;
  EngineState d2h_;  // aliases h2d_ when copy_engines_ == 1
  EngineState compute_;
  std::vector<double> streams_;  // per-stream last completion time
};

}  // namespace starsim::gpusim
