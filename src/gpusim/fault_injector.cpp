#include "gpusim/fault_injector.h"

#include <algorithm>
#include <string>

#include "support/error.h"

namespace starsim::gpusim {

namespace {

using support::DeviceError;
using support::DeviceLostError;
using support::KernelTimeoutError;
using support::TransferError;

}  // namespace

std::string_view to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kMalloc: return "malloc";
    case FaultSite::kMemcpyH2D: return "memcpy_h2d";
    case FaultSite::kMemcpyD2H: return "memcpy_d2h";
    case FaultSite::kKernelLaunch: return "kernel_launch";
    case FaultSite::kTextureBind: return "texture_bind";
    case FaultSite::kStreamEnqueue: return "stream_enqueue";
  }
  return "unknown";
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutOfMemory: return "out_of_memory";
    case FaultKind::kTransferFailure: return "transfer_failure";
    case FaultKind::kTransferCorruption: return "transfer_corruption";
    case FaultKind::kKernelTimeout: return "kernel_timeout";
    case FaultKind::kWatchdogOverrun: return "watchdog_overrun";
    case FaultKind::kBindFailure: return "bind_failure";
    case FaultKind::kStreamFailure: return "stream_failure";
    case FaultKind::kDeviceLost: return "device_lost";
  }
  return "unknown";
}

FaultPolicy FaultPolicy::transient(double rate, std::uint64_t seed) {
  FaultPolicy policy;
  policy.seed = seed;
  policy.malloc_oom_rate = rate;
  policy.h2d_fault_rate = rate;
  policy.d2h_fault_rate = rate;
  policy.kernel_timeout_rate = rate;
  policy.texture_bind_fault_rate = rate;
  return policy;
}

FaultPolicy FaultPolicy::chaos(double rate, double lost_rate,
                               std::uint64_t seed) {
  FaultPolicy policy = transient(rate, seed);
  policy.stream_fault_rate = rate;
  policy.device_lost_rate = lost_rate;
  return policy;
}

FaultInjector::FaultInjector(FaultPolicy policy)
    : policy_(policy), rng_(policy.seed) {
  const auto in_unit = [](double rate) { return rate >= 0.0 && rate <= 1.0; };
  STARSIM_REQUIRE(in_unit(policy_.malloc_oom_rate) &&
                      in_unit(policy_.h2d_fault_rate) &&
                      in_unit(policy_.d2h_fault_rate) &&
                      in_unit(policy_.corruption_fraction) &&
                      in_unit(policy_.kernel_timeout_rate) &&
                      in_unit(policy_.texture_bind_fault_rate) &&
                      in_unit(policy_.stream_fault_rate) &&
                      in_unit(policy_.device_lost_rate),
                  "fault rates must be probabilities in [0, 1]");
}

void FaultInjector::reset() {
  rng_.seed(policy_.seed);
  device_lost_ = false;
  consults_ = 0;
  history_.clear();
}

void FaultInjector::reseed(std::uint64_t seed) {
  policy_.seed = seed;
  reset();
}

void FaultInjector::mark_device_lost() { device_lost_ = true; }

void FaultInjector::throw_if_lost(FaultSite site) {
  if (!device_lost_) return;
  STARSIM_THROW(DeviceLostError, "device lost: " + std::string(to_string(site)) +
                                     " issued to a device that dropped off "
                                     "the bus");
}

void FaultInjector::lose_device(FaultSite site) {
  device_lost_ = true;
  record(site, FaultKind::kDeviceLost);
  STARSIM_THROW(DeviceLostError,
                "injected device loss at " + std::string(to_string(site)) +
                    " (consult #" + std::to_string(consults_) + ")");
}

bool FaultInjector::roll(FaultSite site, double rate) {
  ++consults_;
  if (rate <= 0.0) return false;
  if (rng_.uniform() >= rate) return false;
  // A fault fires; a second roll decides whether it takes the device down.
  if (policy_.device_lost_rate > 0.0 &&
      rng_.uniform() < policy_.device_lost_rate) {
    lose_device(site);
  }
  return true;
}

void FaultInjector::record(FaultSite site, FaultKind kind) {
  history_.push_back(InjectedFault{site, kind, consults_});
}

void FaultInjector::on_malloc(std::size_t bytes) {
  throw_if_lost(FaultSite::kMalloc);
  if (!roll(FaultSite::kMalloc, policy_.malloc_oom_rate)) return;
  record(FaultSite::kMalloc, FaultKind::kOutOfMemory);
  // Transient allocator failure: the capacity is there, the allocation
  // simply failed this time (fragmentation, a racing tenant) — retryable,
  // unlike the DeviceMemoryManager's real capacity OOM.
  throw DeviceError(std::string(__FILE__) + ":" + std::to_string(__LINE__) +
                        ": injected transient OOM on " +
                        std::to_string(bytes) + "-byte device allocation",
                    /*retryable=*/true);
}

void FaultInjector::on_transfer(FaultSite site, std::byte* data,
                                std::size_t bytes) {
  throw_if_lost(site);
  const double rate = site == FaultSite::kMemcpyH2D ? policy_.h2d_fault_rate
                                                    : policy_.d2h_fault_rate;
  if (!roll(site, rate)) return;
  const bool corrupt =
      bytes > 0 && rng_.uniform() < policy_.corruption_fraction;
  if (corrupt) {
    // The copy completed but one payload byte flipped in flight; the modeled
    // end-to-end checksum detects it. Actually flip the byte so a caller
    // that wrongly swallows this error produces a provably wrong image.
    if (data != nullptr) {
      const std::size_t offset = rng_.bounded(
          static_cast<std::uint32_t>(std::min<std::size_t>(bytes, 0xffffffffu)));
      data[offset] ^= std::byte{0x40};
    }
    record(site, FaultKind::kTransferCorruption);
    STARSIM_THROW(TransferError,
                  "injected PCIe corruption on " +
                      std::string(to_string(site)) + " of " +
                      std::to_string(bytes) + " bytes (checksum mismatch)");
  }
  // Outright failure: tear the destination so partial data is never mistaken
  // for a completed transfer.
  if (data != nullptr && bytes > 0) {
    const std::size_t torn = std::min<std::size_t>(bytes, 64);
    for (std::size_t i = 0; i < torn; ++i) data[i] = std::byte{0xee};
  }
  record(site, FaultKind::kTransferFailure);
  STARSIM_THROW(TransferError, "injected PCIe failure on " +
                                   std::string(to_string(site)) + " of " +
                                   std::to_string(bytes) + " bytes");
}

void FaultInjector::on_kernel_launch(double modeled_kernel_s) {
  throw_if_lost(FaultSite::kKernelLaunch);
  if (policy_.watchdog_budget_s > 0.0 &&
      modeled_kernel_s > policy_.watchdog_budget_s) {
    ++consults_;
    record(FaultSite::kKernelLaunch, FaultKind::kWatchdogOverrun);
    STARSIM_THROW(KernelTimeoutError,
                  "kernel exceeded the watchdog budget: modeled " +
                      std::to_string(modeled_kernel_s) + " s > budget " +
                      std::to_string(policy_.watchdog_budget_s) + " s");
  }
  if (!roll(FaultSite::kKernelLaunch, policy_.kernel_timeout_rate)) return;
  record(FaultSite::kKernelLaunch, FaultKind::kKernelTimeout);
  STARSIM_THROW(KernelTimeoutError,
                "injected watchdog kill of a kernel launch (modeled " +
                    std::to_string(modeled_kernel_s) + " s)");
}

void FaultInjector::on_texture_bind() {
  throw_if_lost(FaultSite::kTextureBind);
  if (!roll(FaultSite::kTextureBind, policy_.texture_bind_fault_rate)) return;
  record(FaultSite::kTextureBind, FaultKind::kBindFailure);
  STARSIM_THROW(TransferError, "injected texture binding failure");
}

void FaultInjector::on_stream_enqueue() {
  throw_if_lost(FaultSite::kStreamEnqueue);
  if (!roll(FaultSite::kStreamEnqueue, policy_.stream_fault_rate)) return;
  record(FaultSite::kStreamEnqueue, FaultKind::kStreamFailure);
  STARSIM_THROW(TransferError, "injected stream enqueue failure");
}

}  // namespace starsim::gpusim
