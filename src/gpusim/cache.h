// Set-associative cache simulator.
//
// Used to model the per-SM texture (L1/L2) cache: the adaptive simulator's
// lookup-table fetches are pushed through one of these per simulated SM, and
// the hit/miss counts feed the performance model. The simulator is a plain
// LRU set-associative tag array — no data is stored, only reachability of
// lines — because gpusim keeps functional data in host memory and only needs
// the timing-relevant hit/miss classification.
#pragma once

#include <cstdint>
#include <vector>

namespace starsim::gpusim {

class SetAssociativeCache {
 public:
  /// `total_bytes` must be a multiple of `line_bytes * associativity`;
  /// line size must be a power of two.
  SetAssociativeCache(std::size_t total_bytes, int line_bytes,
                      int associativity);

  /// Probe `address`; inserts on miss. Returns true on hit.
  bool access(std::uint64_t address);

  /// Drop all lines and reset statistics.
  void reset();

  /// Drop all lines, keep statistics.
  void invalidate();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] double hit_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(accesses());
  }

  [[nodiscard]] std::size_t set_count() const { return sets_; }
  [[nodiscard]] int associativity() const { return ways_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;  // LRU timestamp; 0 == invalid
  };

  std::size_t sets_;
  int ways_;
  int line_bytes_;
  int line_shift_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace starsim::gpusim
