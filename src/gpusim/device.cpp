#include "gpusim/device.h"

#include <string>

#include "support/log.h"

namespace starsim::gpusim {

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)), memory_(spec_.global_memory_bytes) {
  STARSIM_REQUIRE(spec_.sm_count > 0, "device needs at least one SM");
  sm_caches_.reserve(static_cast<std::size_t>(spec_.sm_count));
  for (int sm = 0; sm < spec_.sm_count; ++sm) {
    sm_caches_.emplace_back(spec_.texture_cache_bytes_per_sm,
                            spec_.texture_cache_line_bytes,
                            spec_.texture_cache_associativity);
  }
  sm_cache_mutexes_ =
      std::make_unique<std::mutex[]>(static_cast<std::size_t>(spec_.sm_count));
#ifdef _OPENMP
  parallel_blocks_ = true;
#endif
}

Device::~Device() {
  // Destructors must not throw; when leakcheck is armed, teardown leaks are
  // logged here and available programmatically via leak_report() before
  // destruction.
  if (sanitizer_enabled(sanitize_, SanitizerMode::kLeakcheck)) {
    const SanitizerReport leaks = leak_report();
    if (!leaks.clean()) {
      STARSIM_WARN << "device teardown with leaks — " << leaks.summary();
    }
  }
}

SanitizerReport Device::leak_report() const {
  SanitizerReport report;
  report.mode = SanitizerMode::kLeakcheck;
  for (const DeviceMemoryManager::LiveAllocation& alloc :
       memory_.live_allocation_info()) {
    SanitizerFinding finding;
    finding.kind = SanitizerFindingKind::kLeakedAllocation;
    finding.allocation_id = alloc.id;
    finding.address = alloc.bytes;
    finding.message = "device allocation #" + std::to_string(alloc.id) +
                      " (" + std::to_string(alloc.bytes) +
                      " bytes, generation " + std::to_string(alloc.generation) +
                      ") never freed";
    report.add(std::move(finding));
  }
  for (std::size_t i = 0; i < textures_.size(); ++i) {
    if (!textures_[i].has_value()) continue;
    SanitizerFinding finding;
    finding.kind = SanitizerFindingKind::kLeakedTexture;
    finding.allocation_id = textures_[i]->allocation_id();
    finding.address = textures_[i]->bytes();
    finding.message = "texture handle #" + std::to_string(i) +
                      " still bound to allocation #" +
                      std::to_string(textures_[i]->allocation_id()) + " (" +
                      std::to_string(textures_[i]->bytes()) + " bytes)";
    report.add(std::move(finding));
  }
  return report;
}

TextureHandle Device::bind_texture_2d(const DevicePtr<float>& data, int width,
                                      int height, AddressMode mode,
                                      float border_value) {
  if (fault_injector_ != nullptr) [[unlikely]] {
    fault_injector_->on_texture_bind();
  }
  trace::TraceSpan span("gpusim", "texture_bind");
  Texture2D texture(data, width, height, mode, border_value);
  transfers_.texture_binds += 1;
  transfers_.texture_bind_s += spec_.texture_bind_s;
  if (span.armed()) [[unlikely]] {
    span.arg("width", width)
        .arg("height", height)
        .arg("bytes", texture.bytes())
        .arg("modeled_s", spec_.texture_bind_s);
  }
  // Reuse a free slot if any (textures are bound/unbound per frame in the
  // adaptive simulator).
  for (std::size_t i = 0; i < textures_.size(); ++i) {
    if (!textures_[i].has_value()) {
      textures_[i].emplace(texture);
      return TextureHandle{static_cast<std::uint32_t>(i)};
    }
  }
  textures_.emplace_back(texture);
  return TextureHandle{static_cast<std::uint32_t>(textures_.size() - 1)};
}

void Device::unbind_texture(TextureHandle handle) {
  STARSIM_REQUIRE(handle.valid() && handle.index < textures_.size() &&
                      textures_[handle.index].has_value(),
                  "unbinding an invalid or unbound texture");
  textures_[handle.index].reset();
}

std::size_t Device::bound_texture_count() const {
  std::size_t count = 0;
  for (const auto& texture : textures_) {
    if (texture.has_value()) ++count;
  }
  return count;
}

const LaunchResult& Device::last_launch() const {
  STARSIM_REQUIRE(last_launch_.has_value(), "no kernel launched yet");
  return *last_launch_;
}

void Device::validate_launch(const LaunchConfig& config) const {
  STARSIM_REQUIRE(config.total_blocks() > 0, "empty grid");
  STARSIM_REQUIRE(config.threads_per_block() > 0, "empty block");
  if (config.threads_per_block() > spec_.max_threads_per_block) {
    throw support::DeviceError(
        "block of " + std::to_string(config.threads_per_block()) +
        " threads exceeds the device limit of " +
        std::to_string(spec_.max_threads_per_block) +
        " (the paper's ROI-size limitation, Section IV-D)");
  }
  if (config.block.x > spec_.max_block_dim_x ||
      config.block.y > spec_.max_block_dim_y ||
      config.block.z > spec_.max_block_dim_z) {
    throw support::DeviceError("block dimension " + to_string(config.block) +
                               " exceeds device limits");
  }
  if (config.total_blocks() > spec_.max_grid_blocks) {
    throw support::DeviceError("grid of " +
                               std::to_string(config.total_blocks()) +
                               " blocks exceeds device limits");
  }
}

}  // namespace starsim::gpusim
