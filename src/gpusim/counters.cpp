#include "gpusim/counters.h"

#include <sstream>

namespace starsim::gpusim {

void KernelCounters::merge(const KernelCounters& other) {
  blocks_launched += other.blocks_launched;
  threads_launched += other.threads_launched;
  warps_launched += other.warps_launched;
  flops += other.flops;
  global_reads += other.global_reads;
  global_writes += other.global_writes;
  global_bytes_read += other.global_bytes_read;
  global_bytes_written += other.global_bytes_written;
  global_transactions += other.global_transactions;
  shared_reads += other.shared_reads;
  shared_writes += other.shared_writes;
  shared_bank_conflicts += other.shared_bank_conflicts;
  atomic_ops += other.atomic_ops;
  atomic_conflicts += other.atomic_conflicts;
  texture_fetches += other.texture_fetches;
  texture_hits += other.texture_hits;
  texture_misses += other.texture_misses;
  barriers += other.barriers;
  branch_sites_evaluated += other.branch_sites_evaluated;
  divergent_warp_branches += other.divergent_warp_branches;
}

std::string KernelCounters::to_string() const {
  std::ostringstream out;
  out << "blocks=" << blocks_launched << " threads=" << threads_launched
      << " warps=" << warps_launched << " flops=" << flops
      << " gld=" << global_reads << " gst=" << global_writes
      << " txn=" << global_transactions
      << " shared=" << (shared_reads + shared_writes)
      << " bank_conf=" << shared_bank_conflicts
      << " atomics=" << atomic_ops << " conflicts=" << atomic_conflicts
      << " tex=" << texture_fetches << " tex_hit=" << texture_hits
      << " barriers=" << barriers
      << " div=" << divergent_warp_branches << "/"
      << branch_sites_evaluated;
  return out.str();
}

}  // namespace starsim::gpusim
