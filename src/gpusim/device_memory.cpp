#include "gpusim/device_memory.h"

#include <string>

#include "gpusim/fault_injector.h"

namespace starsim::gpusim {

DeviceMemoryManager::DeviceMemoryManager(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  STARSIM_REQUIRE(capacity_bytes > 0, "device memory capacity must be > 0");
}

DeviceMemoryManager::Slot& DeviceMemoryManager::allocate_bytes(
    std::size_t bytes) {
  if (injector_ != nullptr) [[unlikely]] {
    injector_->on_malloc(bytes);
  }
  if (bytes > free_bytes()) {
    STARSIM_THROW(support::DeviceError,
                  "device out of memory: requested " + std::to_string(bytes) +
                      " bytes with " + std::to_string(free_bytes()) + " of " +
                      std::to_string(capacity_) + " free");
  }
  Slot slot;
  slot.data = std::make_unique<std::byte[]>(bytes);
  slot.bytes = bytes;
  slot.id = static_cast<std::uint32_t>(slots_.size());
  slot.live = true;
  slots_.push_back(std::move(slot));
  used_ += bytes;
  ++live_count_;
  return slots_.back();
}

void DeviceMemoryManager::release_id(std::uint32_t id) {
  STARSIM_REQUIRE(id < slots_.size(), "unknown device allocation");
  Slot& slot = slots_[id];
  if (!slot.live) {
    STARSIM_THROW(support::DeviceError,
                  "double free of device allocation " + std::to_string(id));
  }
  slot.live = false;
  slot.data.reset();
  used_ -= slot.bytes;
  --live_count_;
}

bool DeviceMemoryManager::is_live(std::uint32_t id) const {
  return id < slots_.size() && slots_[id].live;
}

}  // namespace starsim::gpusim
