#include "gpusim/device_memory.h"

#include <string>
#include <utility>

#include "gpusim/fault_injector.h"

namespace starsim::gpusim {

DeviceMemoryManager::DeviceMemoryManager(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  STARSIM_REQUIRE(capacity_bytes > 0, "device memory capacity must be > 0");
}

DeviceMemoryManager::Slot& DeviceMemoryManager::allocate_bytes(
    std::size_t bytes) {
  if (injector_ != nullptr) [[unlikely]] {
    injector_->on_malloc(bytes);
  }
  if (bytes > free_bytes()) {
    STARSIM_THROW(support::DeviceError,
                  "device out of memory: requested " + std::to_string(bytes) +
                      " bytes with " + std::to_string(free_bytes()) + " of " +
                      std::to_string(capacity_) + " free");
  }
  Slot* slot;
  if (!free_slots_.empty()) {
    // Recycle a freed slot (same id, bumped generation — already bumped at
    // release time, so handles into the previous occupant fail is_live()).
    slot = &slots_[free_slots_.back()];
    free_slots_.pop_back();
  } else {
    slots_.emplace_back();
    slots_.back().id = static_cast<std::uint32_t>(slots_.size() - 1);
    slot = &slots_.back();
  }
  slot->data = std::make_unique<std::byte[]>(bytes);
  slot->bytes = bytes;
  slot->live = true;
  if (sanitizer_enabled(sanitize_, SanitizerMode::kMemcheck)) [[unlikely]] {
    // Value-initialized: every byte starts "never written".
    slot->init = std::make_unique<std::uint8_t[]>(bytes);
  } else {
    slot->init.reset();
  }
  used_ += bytes;
  ++live_count_;
  return *slot;
}

void DeviceMemoryManager::release_id(std::uint32_t id,
                                     std::uint32_t generation) {
  if (id >= slots_.size()) {
    STARSIM_THROW(support::SanitizerError,
                  "release of unknown device allocation handle #" +
                      std::to_string(id) + " (only " +
                      std::to_string(slots_.size()) + " slot(s) ever issued)");
  }
  Slot& slot = slots_[id];
  if (!slot.live || slot.generation != generation) {
    // The generation check catches a stale handle whose slot has since been
    // recycled — releasing it again must not free the new occupant.
    STARSIM_THROW(support::SanitizerError,
                  "double free of device allocation #" + std::to_string(id) +
                      " (" + std::to_string(slot.bytes) +
                      " bytes, handle generation " + std::to_string(generation) +
                      ", slot at generation " +
                      std::to_string(slot.generation) + ")");
  }
  slot.live = false;
  slot.generation += 1;
  slot.data.reset();
  slot.init.reset();
  used_ -= slot.bytes;
  --live_count_;
  free_slots_.push_back(id);
}

bool DeviceMemoryManager::is_live(std::uint32_t id) const {
  return id < slots_.size() && slots_[id].live;
}

std::vector<DeviceMemoryManager::LiveAllocation>
DeviceMemoryManager::live_allocation_info() const {
  std::vector<LiveAllocation> live;
  for (const Slot& slot : slots_) {
    if (slot.live) live.push_back({slot.id, slot.bytes, slot.generation});
  }
  return live;
}

}  // namespace starsim::gpusim
