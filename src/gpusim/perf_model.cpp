#include "gpusim/perf_model.h"

#include <algorithm>

namespace starsim::gpusim {

KernelTiming estimate_kernel_time(const DeviceSpec& spec,
                                  const LaunchConfig& config,
                                  const KernelCounters& counters) {
  KernelTiming t;
  const Occupancy occ = compute_occupancy(spec, config);
  t.utilization = occ.utilization;
  t.launch_s = spec.kernel_launch_overhead_s;

  const double spc = spec.seconds_per_cycle();
  const double concurrent = std::max(1.0, occ.concurrent_warps);
  const double active_sms = std::min<double>(
      spec.sm_count, static_cast<double>(config.total_blocks()));

  // Arithmetic: effective issue throughput scaled by the occupancy ramp.
  const double flops = static_cast<double>(counters.flops);
  t.compute_s =
      flops / (spec.effective_fp64_flops() * std::max(1e-6, t.utilization));

  // Global memory: whichever binds, bandwidth or (latency / hiding). When
  // warp-access tracking ran, coalescing has already folded each warp's
  // same-segment accesses into transactions; otherwise fall back to the raw
  // access count (conservative).
  const double accesses =
      counters.global_transactions > 0
          ? static_cast<double>(counters.global_transactions)
          : static_cast<double>(counters.global_reads +
                                counters.global_writes);
  const double bandwidth_s = static_cast<double>(counters.global_bytes()) /
                             (spec.global_bandwidth_gbps * 1e9);
  const double latency_s =
      accesses * spec.global_latency_cycles * spc / concurrent;
  t.global_s = std::max(bandwidth_s, latency_s);

  // Shared memory: banked, serviced per SM; each bank conflict adds a
  // serialized pass on its SM.
  t.shared_s =
      static_cast<double>(counters.shared_reads + counters.shared_writes) *
          spc / (spec.shared_accesses_per_cycle_per_sm * active_sms) +
      static_cast<double>(counters.shared_bank_conflicts) *
          spec.shared_conflict_cycles * spc / active_sms;

  // Texture: cached hits stream at the filter rate; misses pay latency.
  t.texture_s =
      static_cast<double>(counters.texture_hits) * spc /
          (spec.texture_fetches_per_cycle_per_sm * active_sms) +
      static_cast<double>(counters.texture_misses) *
          spec.texture_miss_latency_cycles * spc / concurrent;

  // Atomics: issue-rate bound plus serialization of conflicting addresses.
  t.atomic_s = static_cast<double>(counters.atomic_ops) * spc /
                   (spec.atomic_ops_per_cycle_per_sm * active_sms) +
               static_cast<double>(counters.atomic_conflicts) *
                   spec.atomic_conflict_retry_cycles * spc / concurrent;

  // Control overheads.
  t.barrier_s = static_cast<double>(counters.barriers) * spec.barrier_cycles *
                spc / concurrent;
  t.divergence_s = static_cast<double>(counters.divergent_warp_branches) *
                   spec.divergence_penalty_cycles * spc / concurrent;

  t.kernel_s = t.launch_s + t.compute_s + t.global_s + t.shared_s +
               t.texture_s + t.atomic_s + t.barrier_s + t.divergence_s;
  t.achieved_gflops = t.kernel_s > 0.0 ? flops / t.kernel_s / 1e9 : 0.0;
  return t;
}

double estimate_transfer_time(const DeviceSpec& spec, std::uint64_t bytes,
                              bool pinned) {
  const double bandwidth =
      (pinned ? spec.pcie_pinned_bandwidth_gbps : spec.pcie_bandwidth_gbps) *
      1e9;
  return spec.pcie_latency_s + static_cast<double>(bytes) / bandwidth;
}

}  // namespace starsim::gpusim
