// The coroutine type a gpusim kernel returns.
//
// A kernel is any callable `ThreadProgram kernel(ThreadCtx& ctx)` — the body
// is the per-thread program, exactly like a CUDA `__global__` function body.
// `co_await ctx.syncthreads()` suspends the thread at a block barrier; the
// block runner resumes all threads of the block in warp order once every
// live thread has reached the barrier, faithfully reproducing CUDA's
// all-or-nothing __syncthreads semantics (divergent barriers are detected
// and reported as DeviceError rather than deadlocking).
#pragma once

#include <coroutine>
#include <exception>

#include "gpusim/frame_pool.h"

namespace starsim::gpusim {

class ThreadProgram {
 public:
  struct promise_type {
    std::exception_ptr exception;

    ThreadProgram get_return_object() {
      return ThreadProgram(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    static void* operator new(std::size_t bytes) {
      return detail::frame_alloc(bytes);
    }
    static void operator delete(void* ptr, std::size_t bytes) noexcept {
      detail::frame_free(ptr, bytes);
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ThreadProgram() = default;
  explicit ThreadProgram(Handle handle) : handle_(handle) {}
  ThreadProgram(ThreadProgram&& other) noexcept : handle_(other.handle_) {
    other.handle_ = {};
  }
  ThreadProgram& operator=(ThreadProgram&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  ThreadProgram(const ThreadProgram&) = delete;
  ThreadProgram& operator=(const ThreadProgram&) = delete;
  ~ThreadProgram() { destroy(); }

  /// Transfer ownership of the raw handle to the block runner.
  [[nodiscard]] Handle release() {
    Handle h = handle_;
    handle_ = {};
    return h;
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace starsim::gpusim
