#include "gpusim/sanitizer.h"

#include <algorithm>
#include <array>

#include "support/error.h"

namespace starsim::gpusim {

SanitizerMode sanitizer_mode_from_string(std::string_view name) {
  if (name == "off") return SanitizerMode::kOff;
  if (name == "memcheck") return SanitizerMode::kMemcheck;
  if (name == "race" || name == "racecheck") return SanitizerMode::kRacecheck;
  if (name == "sync" || name == "synccheck") return SanitizerMode::kSynccheck;
  if (name == "leak" || name == "leakcheck") return SanitizerMode::kLeakcheck;
  if (name == "all") return SanitizerMode::kAll;
  STARSIM_THROW(support::PreconditionError,
                "unknown sanitizer mode '" + std::string(name) +
                    "' (expected off|memcheck|race|sync|leak|all)");
}

std::string to_string(SanitizerMode mode) {
  if (mode == SanitizerMode::kOff) return "off";
  if (mode == SanitizerMode::kAll) return "all";
  std::string out;
  const auto append = [&out](std::string_view name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (sanitizer_enabled(mode, SanitizerMode::kMemcheck)) append("memcheck");
  if (sanitizer_enabled(mode, SanitizerMode::kRacecheck)) append("racecheck");
  if (sanitizer_enabled(mode, SanitizerMode::kSynccheck)) append("synccheck");
  if (sanitizer_enabled(mode, SanitizerMode::kLeakcheck)) append("leakcheck");
  return out;
}

std::string_view to_string(SanitizerFindingKind kind) {
  switch (kind) {
    case SanitizerFindingKind::kGlobalOutOfBounds:
      return "global-out-of-bounds";
    case SanitizerFindingKind::kSharedOutOfBounds:
      return "shared-out-of-bounds";
    case SanitizerFindingKind::kUninitializedRead:
      return "uninitialized-read";
    case SanitizerFindingKind::kUseAfterFree:
      return "use-after-free";
    case SanitizerFindingKind::kInvalidTextureFetch:
      return "invalid-texture-fetch";
    case SanitizerFindingKind::kSharedRace:
      return "shared-race";
    case SanitizerFindingKind::kBarrierDivergence:
      return "barrier-divergence";
    case SanitizerFindingKind::kLeakedAllocation:
      return "leaked-allocation";
    case SanitizerFindingKind::kLeakedTexture:
      return "leaked-texture";
  }
  return "unknown";
}

std::string SanitizerFinding::describe() const {
  std::string out = "[" + std::string(to_string(kind)) + "] block " +
                    to_string(block) + " thread " + to_string(thread);
  if (allocation_id != 0xffffffffu) {
    out += " alloc #" + std::to_string(allocation_id);
  }
  out += " byte " + std::to_string(address) + " epoch " +
         std::to_string(epoch) + ": " + message;
  return out;
}

std::uint64_t SanitizerReport::count(SanitizerFindingKind kind) const {
  return static_cast<std::uint64_t>(
      std::count_if(findings.begin(), findings.end(),
                    [kind](const SanitizerFinding& finding) {
                      return finding.kind == kind;
                    }));
}

void SanitizerReport::add(SanitizerFinding finding) {
  total_findings += 1;
  if (findings.size() < kMaxFindings) findings.push_back(std::move(finding));
}

void SanitizerReport::merge(const SanitizerReport& other) {
  mode = mode | other.mode;
  total_findings += other.total_findings;
  for (const SanitizerFinding& finding : other.findings) {
    if (findings.size() >= kMaxFindings) break;
    findings.push_back(finding);
  }
}

std::string SanitizerReport::summary() const {
  if (clean()) {
    return "sanitizer (" + to_string(mode) + "): 0 findings";
  }
  std::string out = "sanitizer (" + to_string(mode) + "): " +
                    std::to_string(total_findings) + " finding(s)";
  constexpr std::array<SanitizerFindingKind, 9> kKinds = {
      SanitizerFindingKind::kGlobalOutOfBounds,
      SanitizerFindingKind::kSharedOutOfBounds,
      SanitizerFindingKind::kUninitializedRead,
      SanitizerFindingKind::kUseAfterFree,
      SanitizerFindingKind::kInvalidTextureFetch,
      SanitizerFindingKind::kSharedRace,
      SanitizerFindingKind::kBarrierDivergence,
      SanitizerFindingKind::kLeakedAllocation,
      SanitizerFindingKind::kLeakedTexture,
  };
  for (const SanitizerFindingKind kind : kKinds) {
    const std::uint64_t n = count(kind);
    if (n > 0) {
      out += "\n  " + std::string(to_string(kind)) + ": " + std::to_string(n);
    }
  }
  if (total_findings > findings.size()) {
    out += "\n  (showing first " + std::to_string(findings.size()) + ")";
  }
  for (const SanitizerFinding& finding : findings) {
    out += "\n  " + finding.describe();
  }
  return out;
}

}  // namespace starsim::gpusim
