// Simulated device (global) memory.
//
// Device memory lives in host RAM but is owned and metered by the
// DeviceMemoryManager so the simulator reproduces the paper's resource
// limits: allocating past the GTX480's 1.5 GB throws DeviceError — this is
// the constraint that caps test1 at 2^17 stars ("the number of simulated
// stars is constrained by the available memory of the simulator").
//
// `DevicePtr<T>` is the typed handle kernels and the host API exchange. It
// carries the raw storage pointer (for speed), the element count (every
// access is bounds-checked) and a liveness flag pointer so use-after-free is
// detected rather than silently reading freed storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>

#include "support/error.h"

namespace starsim::gpusim {

class DeviceMemoryManager;
class FaultInjector;

template <typename T>
class DevicePtr {
 public:
  DevicePtr() = default;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return count_ * sizeof(T); }
  [[nodiscard]] bool is_null() const { return raw_ == nullptr; }
  [[nodiscard]] bool is_live() const {
    return raw_ != nullptr && live_flag_ != nullptr && *live_flag_;
  }

  /// Raw storage access for the host-side API (memcpy, texture binding).
  /// Kernels must go through ThreadCtx so accesses are counted.
  [[nodiscard]] T* raw() const {
    STARSIM_REQUIRE(is_live(), "device pointer is null or freed");
    return raw_;
  }

  [[nodiscard]] std::uint32_t allocation_id() const { return id_; }

 private:
  friend class Device;
  friend class DeviceMemoryManager;

  DevicePtr(T* raw, std::size_t count, std::uint32_t id, const bool* live)
      : raw_(raw), count_(count), id_(id), live_flag_(live) {}

  T* raw_ = nullptr;
  std::size_t count_ = 0;
  std::uint32_t id_ = 0xffffffffu;
  const bool* live_flag_ = nullptr;
};

/// Owns all simulated global memory of one device.
class DeviceMemoryManager {
 public:
  explicit DeviceMemoryManager(std::size_t capacity_bytes);

  DeviceMemoryManager(const DeviceMemoryManager&) = delete;
  DeviceMemoryManager& operator=(const DeviceMemoryManager&) = delete;

  /// Allocate `count` elements of T; throws DeviceError when the device
  /// memory budget would be exceeded.
  template <typename T>
  DevicePtr<T> allocate(std::size_t count) {
    STARSIM_REQUIRE(count > 0, "device allocation must be non-empty");
    const std::size_t bytes = count * sizeof(T);
    Slot& slot = allocate_bytes(bytes);
    return DevicePtr<T>(reinterpret_cast<T*>(slot.data.get()), count, slot.id,
                        &slot.live);
  }

  /// Release an allocation; double free throws.
  template <typename T>
  void release(DevicePtr<T>& ptr) {
    release_id(ptr.id_);
    ptr = DevicePtr<T>();
  }

  /// Attach a fault-injection oracle consulted before every allocation
  /// (nullptr detaches; the manager does not own it). Releases never
  /// consult it: cleanup is fault-free by design.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_count_; }
  [[nodiscard]] bool is_live(std::uint32_t id) const;

 private:
  struct Slot {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
    std::uint32_t id = 0;
    bool live = false;
  };

  Slot& allocate_bytes(std::size_t bytes);
  void release_id(std::uint32_t id);

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t live_count_ = 0;
  FaultInjector* injector_ = nullptr;  // non-owning, may be null
  // deque: slot addresses (hence &slot.live) stay stable across growth.
  std::deque<Slot> slots_;
};

}  // namespace starsim::gpusim
