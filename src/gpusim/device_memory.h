// Simulated device (global) memory.
//
// Device memory lives in host RAM but is owned and metered by the
// DeviceMemoryManager so the simulator reproduces the paper's resource
// limits: allocating past the GTX480's 1.5 GB throws DeviceError — this is
// the constraint that caps test1 at 2^17 stars ("the number of simulated
// stars is constrained by the available memory of the simulator").
//
// `DevicePtr<T>` is the typed handle kernels and the host API exchange. It
// carries the raw storage pointer (for speed), the element count (every
// access is bounds-checked), a liveness flag pointer, and the allocation
// generation observed at malloc time. Freed slots are recycled with a
// bumped generation, so a stale handle into a recycled slot is still
// detected (the sanitizer's use-after-free check) instead of silently
// reading the new occupant's bytes.
//
// When the sanitizer's memcheck tool is enabled, each allocation also
// carries an initialization shadow (one byte per data byte) that marks
// which bytes have been written (kernel stores, h2d copies, memset); reads
// of never-written bytes become uninitialized-read findings. The shadow is
// only allocated while sanitizing, so off mode pays nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "gpusim/sanitizer.h"
#include "support/error.h"

namespace starsim::gpusim {

class DeviceMemoryManager;
class FaultInjector;

template <typename T>
class DevicePtr {
 public:
  DevicePtr() = default;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return count_ * sizeof(T); }
  [[nodiscard]] bool is_null() const { return raw_ == nullptr; }
  [[nodiscard]] bool is_live() const {
    return raw_ != nullptr && live_flag_ != nullptr && *live_flag_ &&
           generation_flag_ != nullptr && *generation_flag_ == generation_;
  }

  /// Raw storage access for the host-side API (memcpy, texture binding).
  /// Kernels must go through ThreadCtx so accesses are counted.
  [[nodiscard]] T* raw() const {
    STARSIM_REQUIRE(is_live(), "device pointer is null or freed");
    return raw_;
  }

  [[nodiscard]] std::uint32_t allocation_id() const { return id_; }
  /// Slot generation this handle was minted for; a recycled slot has a
  /// higher generation, which is how stale handles are told apart.
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

  // --- Sanitizer initialization shadow (memcheck) ----------------------------
  /// Mark `n` bytes at `byte_offset` as initialized. No-op unless the
  /// allocation was made while memcheck was enabled.
  void sanitizer_mark_initialized(std::size_t byte_offset,
                                  std::size_t n) const {
    if (init_shadow_ != nullptr) [[unlikely]] {
      std::memset(init_shadow_ + byte_offset, 1, n);
    }
  }

  /// True when all `n` bytes at `byte_offset` have been written since
  /// allocation (trivially true without a shadow).
  [[nodiscard]] bool sanitizer_initialized(std::size_t byte_offset,
                                           std::size_t n) const {
    if (init_shadow_ == nullptr) return true;
    for (std::size_t i = 0; i < n; ++i) {
      if (init_shadow_[byte_offset + i] == 0) return false;
    }
    return true;
  }

 private:
  friend class Device;
  friend class DeviceMemoryManager;

  DevicePtr(T* raw, std::size_t count, std::uint32_t id, const bool* live,
            const std::uint32_t* generation_flag, std::uint32_t generation,
            std::uint8_t* init_shadow)
      : raw_(raw),
        count_(count),
        id_(id),
        live_flag_(live),
        generation_flag_(generation_flag),
        generation_(generation),
        init_shadow_(init_shadow) {}

  T* raw_ = nullptr;
  std::size_t count_ = 0;
  std::uint32_t id_ = 0xffffffffu;
  const bool* live_flag_ = nullptr;
  const std::uint32_t* generation_flag_ = nullptr;
  std::uint32_t generation_ = 0;
  std::uint8_t* init_shadow_ = nullptr;  // null unless memcheck at malloc
};

/// Owns all simulated global memory of one device.
class DeviceMemoryManager {
 public:
  explicit DeviceMemoryManager(std::size_t capacity_bytes);

  DeviceMemoryManager(const DeviceMemoryManager&) = delete;
  DeviceMemoryManager& operator=(const DeviceMemoryManager&) = delete;

  /// Allocate `count` elements of T; throws DeviceError when the device
  /// memory budget would be exceeded.
  template <typename T>
  DevicePtr<T> allocate(std::size_t count) {
    STARSIM_REQUIRE(count > 0, "device allocation must be non-empty");
    const std::size_t bytes = count * sizeof(T);
    Slot& slot = allocate_bytes(bytes);
    return DevicePtr<T>(reinterpret_cast<T*>(slot.data.get()), count, slot.id,
                        &slot.live, &slot.generation, slot.generation,
                        slot.init.get());
  }

  /// Release an allocation; double free and unknown handles throw
  /// support::SanitizerError (a real defect, never retryable).
  template <typename T>
  void release(DevicePtr<T>& ptr) {
    release_id(ptr.id_, ptr.generation_);
    ptr = DevicePtr<T>();
  }

  /// Attach a fault-injection oracle consulted before every allocation
  /// (nullptr detaches; the manager does not own it). Releases never
  /// consult it: cleanup is fault-free by design.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Enable/disable sanitizer tools for *future* allocations (memcheck adds
  /// the initialization shadow at malloc time; earlier allocations keep
  /// whatever shadow they were born with).
  void set_sanitizer(SanitizerMode mode) { sanitize_ = mode; }
  [[nodiscard]] SanitizerMode sanitizer() const { return sanitize_; }

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_count_; }
  [[nodiscard]] bool is_live(std::uint32_t id) const;

  /// One live (unfreed) allocation, as enumerated by leakcheck.
  struct LiveAllocation {
    std::uint32_t id = 0;
    std::size_t bytes = 0;
    std::uint32_t generation = 0;
  };
  [[nodiscard]] std::vector<LiveAllocation> live_allocation_info() const;

 private:
  struct Slot {
    std::unique_ptr<std::byte[]> data;
    std::unique_ptr<std::uint8_t[]> init;  // memcheck shadow, else null
    std::size_t bytes = 0;
    std::uint32_t id = 0;
    /// Bumped on every release; handles minted for an older generation of
    /// a recycled slot fail is_live().
    std::uint32_t generation = 0;
    bool live = false;
  };

  Slot& allocate_bytes(std::size_t bytes);
  void release_id(std::uint32_t id, std::uint32_t generation);

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t live_count_ = 0;
  FaultInjector* injector_ = nullptr;  // non-owning, may be null
  SanitizerMode sanitize_ = SanitizerMode::kOff;
  // deque: slot addresses (hence &slot.live) stay stable across growth.
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  // ids available for recycling
};

}  // namespace starsim::gpusim
