// The performance model: execution counters -> modeled kernel time.
//
// gpusim executes kernels functionally on host memory and *counts* the work;
// this module prices the counts with DeviceSpec parameters. The model is
// deliberately additive (compute + each memory class, no overlap credit):
// it is documented, monotone in every counter, and — as DESIGN.md derives —
// sufficient to reproduce every shape in the paper's evaluation, including
// the test1/test2 inflection points, with one fitted constant
// (DeviceSpec::issue_efficiency).
//
// Component formulas (spc = seconds per core clock cycle):
//   compute    = flops / (effective_fp64_flops * utilization)
//   global     = max(bytes / bandwidth,
//                    accesses * latency * spc / concurrent_warps)
//   shared     = accesses * spc / (shared_rate * active_sms)
//   texture    = hits * spc / (tex_rate * active_sms)
//                + misses * miss_latency * spc / concurrent_warps
//   atomic     = ops * spc / (atomic_rate * active_sms)
//                + conflicts * retry * spc / concurrent_warps
//   barrier    = crossings * barrier_cycles * spc / concurrent_warps
//   divergence = divergent_branches * penalty * spc / concurrent_warps
//   kernel     = launch_overhead + sum of the above
#pragma once

#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/dim.h"
#include "gpusim/occupancy.h"

namespace starsim::gpusim {

/// Modeled time breakdown of one kernel launch, all in seconds.
struct KernelTiming {
  double launch_s = 0.0;
  double compute_s = 0.0;
  double global_s = 0.0;
  double shared_s = 0.0;
  double texture_s = 0.0;
  double atomic_s = 0.0;
  double barrier_s = 0.0;
  double divergence_s = 0.0;
  double kernel_s = 0.0;  ///< total (launch overhead + all components)

  double utilization = 0.0;       ///< occupancy ramp factor applied
  double achieved_gflops = 0.0;   ///< counted flops / kernel_s / 1e9
};

/// Price `counters` for a launch of `config` on `spec`.
[[nodiscard]] KernelTiming estimate_kernel_time(const DeviceSpec& spec,
                                                const LaunchConfig& config,
                                                const KernelCounters& counters);

/// Modeled one-direction PCIe transfer time for a single call. `pinned`
/// selects the page-locked-host bandwidth.
[[nodiscard]] double estimate_transfer_time(const DeviceSpec& spec,
                                            std::uint64_t bytes,
                                            bool pinned = false);

}  // namespace starsim::gpusim
