// Timing model of the paper's *host* (an Intel i7 @ 2.80 GHz running the
// single-threaded sequential simulator, plus the CPU-side stages of the two
// GPU simulators).
//
// The sequential simulator is executed for real on this machine, but real
// wall time on a 2026 container is not comparable to the paper's 2012 CPU.
// The benches therefore report both a *measured* column and a *modeled*
// column; the modeled column uses this spec so the paper's speedup
// magnitudes (1-2 orders, avg ~97x) are reproducible and host-independent.
// `effective_scalar_flops` was fitted once from the paper's average test1
// speedup (DESIGN.md); the LUT-build constants reproduce Table I's 0.71 ms.
#pragma once

namespace starsim::gpusim {

struct HostSpec {
  const char* name = "i7-860 (modeled, single core)";

  /// Sustained scalar fp64 flop-equivalents per second of the sequential
  /// simulator's inner loop (unvectorized, call-heavy 2012-era code).
  double effective_scalar_flops = 0.40e9;

  /// Cores available to the multithreaded CPU simulator extension ("the
  /// CPU has eight cores" — Section IV) and its scaling efficiency.
  int cores = 8;
  double parallel_efficiency = 0.85;

  /// Lookup-table construction cost: fixed allocation/setup plus a
  /// per-entry evaluation cost (Table I: 0.71 ms at 16 x 10 x 10 entries).
  double lut_build_fixed_s = 0.60e-3;
  double lut_build_per_entry_s = 70e-9;

  /// Sustained host memory bandwidth (partial-image reduction in the
  /// multi-GPU extension).
  double memory_bandwidth_gbps = 8.0;

  /// Modeled sequential time for `flop_equivalents` of arithmetic.
  [[nodiscard]] double scalar_time_s(double flop_equivalents) const {
    return flop_equivalents / effective_scalar_flops;
  }

  /// Modeled time with `threads` cores working (capped at `cores`).
  [[nodiscard]] double parallel_time_s(double flop_equivalents,
                                       int threads) const {
    const int used = threads < 1 ? 1 : (threads > cores ? cores : threads);
    const double scale =
        used == 1 ? 1.0 : static_cast<double>(used) * parallel_efficiency;
    return flop_equivalents / (effective_scalar_flops * scale);
  }

  /// Modeled lookup-table build time for `entries` table cells.
  [[nodiscard]] double lut_build_time_s(double entries) const {
    return lut_build_fixed_s + entries * lut_build_per_entry_s;
  }

  /// Modeled time to stream `bytes` through host memory once.
  [[nodiscard]] double memory_stream_time_s(double bytes) const {
    return bytes / (memory_bandwidth_gbps * 1e9);
  }

  /// The paper's host.
  static HostSpec i7_860() { return HostSpec{}; }
};

}  // namespace starsim::gpusim
