#include "gpusim/texture.h"

#include <algorithm>

#include "support/error.h"

namespace starsim::gpusim {

Texture2D::Texture2D(DevicePtr<float> data, int width, int height,
                     AddressMode mode, float border_value)
    : data_(data),
      width_(width),
      height_(height),
      mode_(mode),
      border_value_(border_value) {
  STARSIM_REQUIRE(width > 0 && height > 0,
                  "texture dimensions must be positive");
  STARSIM_REQUIRE(width <= 0xffff && height <= 0xffff,
                  "texture extent exceeds 65536 (Morton addressing range)");
  STARSIM_REQUIRE(data.is_live(), "texture source must be a live allocation");
  STARSIM_REQUIRE(
      data.size() >= static_cast<std::size_t>(width) *
                         static_cast<std::size_t>(height),
      "texture source allocation smaller than width*height");
}

bool Texture2D::resolve(int& x, int& y) const {
  const bool inside = x >= 0 && y >= 0 && x < width_ && y < height_;
  if (inside) return true;
  if (mode_ == AddressMode::kBorder) return false;
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return true;
}

}  // namespace starsim::gpusim
