// CUDA-style launch geometry types.
//
// gpusim mirrors the CUDA execution hierarchy: a kernel launch is a grid of
// thread blocks, each block a 1-3 dimensional arrangement of threads that
// execute in warps of `DeviceSpec::warp_size`. Dim3 follows CUDA's dim3
// semantics (unspecified components default to 1).
#pragma once

#include <cstdint>
#include <string>

namespace starsim::gpusim {

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_ = 1, std::uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  /// Total element count (threads in a block / blocks in a grid).
  [[nodiscard]] constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }

  /// Row-major linearization of an index within this extent.
  [[nodiscard]] constexpr std::uint64_t linear(const Dim3& idx) const {
    return (static_cast<std::uint64_t>(idx.z) * y + idx.y) * x + idx.x;
  }

  /// Inverse of linear(): reconstruct the 3-D index of `flat`.
  [[nodiscard]] constexpr Dim3 delinearize(std::uint64_t flat) const {
    Dim3 idx;
    idx.x = static_cast<std::uint32_t>(flat % x);
    idx.y = static_cast<std::uint32_t>((flat / x) % y);
    idx.z = static_cast<std::uint32_t>(flat / (static_cast<std::uint64_t>(x) * y));
    return idx;
  }

  constexpr bool operator==(const Dim3&) const = default;
};

[[nodiscard]] inline std::string to_string(const Dim3& d) {
  return "(" + std::to_string(d.x) + ", " + std::to_string(d.y) + ", " +
         std::to_string(d.z) + ")";
}

/// A kernel launch configuration: grid extent in blocks, block extent in
/// threads (CUDA's <<<grid, block>>>).
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;

  [[nodiscard]] constexpr std::uint64_t total_blocks() const {
    return grid.count();
  }
  [[nodiscard]] constexpr std::uint64_t threads_per_block() const {
    return block.count();
  }
  [[nodiscard]] constexpr std::uint64_t total_threads() const {
    return grid.count() * block.count();
  }

  constexpr bool operator==(const LaunchConfig&) const = default;
};

}  // namespace starsim::gpusim
