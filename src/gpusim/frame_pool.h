// Pooled allocation for simulated-thread coroutine frames.
//
// A large kernel launch creates millions of short-lived coroutines (one per
// simulated CUDA thread). Routing their frames through a thread-local
// free-list keyed by size removes the general-purpose allocator from the
// launch hot path; a block's threads are created and destroyed on one OS
// thread, so the pool needs no synchronization.
#pragma once

#include <cstddef>

namespace starsim::gpusim::detail {

/// Allocate a coroutine frame of `bytes`; reuses a previously freed frame of
/// the same size class when available.
void* frame_alloc(std::size_t bytes);

/// Return a frame to the pool.
void frame_free(void* ptr, std::size_t bytes);

/// Release all pooled frames of the calling thread (test hook; frames are
/// otherwise retained for reuse until thread exit).
void frame_pool_drain();

/// Number of frames currently parked in the calling thread's pool.
std::size_t frame_pool_size();

}  // namespace starsim::gpusim::detail
