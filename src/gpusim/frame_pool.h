// Pooled allocation for simulated-thread coroutine frames.
//
// A large kernel launch creates millions of short-lived coroutines (one per
// simulated CUDA thread). Routing their frames through a thread-local
// free-list keyed by size removes the general-purpose allocator from the
// launch hot path; a block's threads are created and destroyed on one OS
// thread, so the pool needs no synchronization.
#pragma once

#include <cstddef>
#include <cstdint>

namespace starsim::gpusim::detail {

/// Allocate a coroutine frame of `bytes`; reuses a previously freed frame of
/// the same size class when available.
void* frame_alloc(std::size_t bytes);

/// Return a frame to the pool.
void frame_free(void* ptr, std::size_t bytes);

/// Release all pooled frames of the calling thread (test hook; frames are
/// otherwise retained for reuse until thread exit). Also flushes the
/// thread's reuse counters into the process-wide aggregate.
void frame_pool_drain();

/// Number of frames currently parked in the calling thread's pool.
std::size_t frame_pool_size();

/// Allocation-churn counters: every frame_alloc() is an acquisition that was
/// either satisfied from the free list (reused) or fell through to malloc
/// (allocated); acquired == reused + allocated.
struct FramePoolStats {
  std::uint64_t acquired = 0;
  std::uint64_t reused = 0;
  std::uint64_t allocated = 0;

  /// Fraction of acquisitions served without touching malloc; 0 when idle.
  [[nodiscard]] double reuse_rate() const {
    return acquired > 0
               ? static_cast<double>(reused) / static_cast<double>(acquired)
               : 0.0;
  }
};

/// Process-wide aggregate plus the calling thread's not-yet-flushed counts.
/// Counters are kept thread-local on the hot path and folded into the
/// global aggregate when a thread drains its pool or exits, so totals over
/// a worker fleet are exact once the workers have joined.
[[nodiscard]] FramePoolStats frame_pool_stats();

/// Zero the process-wide aggregate and the calling thread's counters
/// (bench/test hook; other threads' unflushed counts are unaffected).
void frame_pool_stats_reset();

}  // namespace starsim::gpusim::detail
