#include "gpusim/cache.h"

#include <bit>

#include "support/error.h"

namespace starsim::gpusim {

SetAssociativeCache::SetAssociativeCache(std::size_t total_bytes,
                                         int line_bytes, int associativity)
    : ways_(associativity), line_bytes_(line_bytes) {
  STARSIM_REQUIRE(line_bytes > 0 && std::has_single_bit(
                      static_cast<unsigned>(line_bytes)),
                  "cache line size must be a positive power of two");
  STARSIM_REQUIRE(associativity > 0, "associativity must be positive");
  const std::size_t line_capacity =
      total_bytes / (static_cast<std::size_t>(line_bytes) *
                     static_cast<std::size_t>(associativity));
  STARSIM_REQUIRE(line_capacity > 0,
                  "cache must hold at least one set of lines");
  sets_ = line_capacity;
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes));
  lines_.assign(sets_ * static_cast<std::size_t>(ways_), Line{});
}

bool SetAssociativeCache::access(std::uint64_t address) {
  const std::uint64_t line_addr = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line_addr % sets_);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];
  ++clock_;

  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.last_use != 0 && line.tag == tag) {
      line.last_use = clock_;
      ++hits_;
      return true;
    }
    if (line.last_use < victim->last_use) victim = &line;
  }
  victim->tag = tag;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

void SetAssociativeCache::reset() {
  invalidate();
  hits_ = 0;
  misses_ = 0;
}

void SetAssociativeCache::invalidate() {
  for (Line& line : lines_) line = Line{};
  clock_ = 0;
}

}  // namespace starsim::gpusim
