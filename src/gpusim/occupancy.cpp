#include "gpusim/occupancy.h"

#include <algorithm>

namespace starsim::gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec,
                            const LaunchConfig& config) {
  Occupancy occ;
  const std::uint64_t threads_per_block = config.threads_per_block();
  occ.warps_per_block =
      (threads_per_block + static_cast<std::uint64_t>(spec.warp_size) - 1) /
      static_cast<std::uint64_t>(spec.warp_size);

  // Residency per SM is limited by the block slot count and the warp budget.
  const auto warp_limited = static_cast<int>(
      static_cast<std::uint64_t>(spec.max_resident_warps_per_sm) /
      occ.warps_per_block);
  occ.resident_blocks_per_sm =
      std::max(1, std::min(spec.max_resident_blocks_per_sm, warp_limited));
  occ.resident_warps_per_sm = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(occ.resident_blocks_per_sm) *
          occ.warps_per_block,
      static_cast<std::uint64_t>(spec.max_resident_warps_per_sm)));

  const double grid_warps = static_cast<double>(config.total_blocks()) *
                            static_cast<double>(occ.warps_per_block);
  const double device_capacity =
      static_cast<double>(spec.sm_count) *
      static_cast<double>(occ.resident_warps_per_sm);
  occ.concurrent_warps = std::min(grid_warps, device_capacity);
  occ.utilization =
      std::min(1.0, occ.concurrent_warps / spec.saturation_warps());
  return occ;
}

}  // namespace starsim::gpusim
