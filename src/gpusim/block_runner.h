// Executes one thread block to completion.
//
// All threads of a block run as coroutines on a single OS thread, resumed in
// warp order. Execution proceeds in passes: each pass resumes every live
// thread until it either finishes or suspends at a __syncthreads barrier.
// CUDA's barrier contract is enforced — if, within one pass, some threads
// reach a barrier while others run to completion, the launch fails with a
// DeviceError instead of deadlocking (the real hardware's behaviour is
// undefined; failing loudly is the useful simulation of "undefined").
// Under the sanitizer's synccheck tool the divergence is instead recorded
// as a kBarrierDivergence finding and the block is abandoned (stranded
// coroutines are destroyed), so a sanitized run reports the defect for
// every affected block rather than dying on the first.
#pragma once

#include <string>
#include <vector>

#include "gpusim/launch_state.h"
#include "gpusim/thread_ctx.h"
#include "gpusim/thread_program.h"

namespace starsim::gpusim {

namespace detail {

/// RAII guard over the raw coroutine handles of a block so an exception
/// mid-run (kernel error or barrier-contract violation) cannot leak frames.
class HandleSet {
 public:
  explicit HandleSet(std::size_t count) : handles_(count) {}
  HandleSet(const HandleSet&) = delete;
  HandleSet& operator=(const HandleSet&) = delete;
  ~HandleSet() {
    for (ThreadProgram::Handle& handle : handles_) {
      if (handle) handle.destroy();
    }
  }

  ThreadProgram::Handle& operator[](std::size_t i) { return handles_[i]; }

  /// Destroy and null the handle at `i`.
  void retire(std::size_t i) {
    handles_[i].destroy();
    handles_[i] = {};
  }

 private:
  std::vector<ThreadProgram::Handle> handles_;
};

}  // namespace detail

/// Run the block `block_idx` of the launch described by `launch`, invoking
/// `kernel(ctx)` once per thread. The block's counters are merged into the
/// launch totals when the block retires.
template <typename KernelFn>
void run_block(LaunchState& launch, const Dim3& block_idx,
               const KernelFn& kernel) {
  BlockState block(launch, block_idx);
  const std::size_t thread_count =
      static_cast<std::size_t>(launch.config.block.count());

  std::vector<ThreadCtx> ctxs;
  ctxs.reserve(thread_count);
  detail::HandleSet handles(thread_count);
  for (std::size_t t = 0; t < thread_count; ++t) {
    ctxs.emplace_back(&block, launch.config.block.delinearize(t));
    handles[t] = kernel(ctxs[t]).release();
  }

  std::vector<bool> done(thread_count, false);
  std::size_t done_count = 0;
  while (done_count < thread_count) {
    std::size_t suspended = 0;
    std::size_t finished_this_pass = 0;
    std::size_t first_waiting = thread_count;  // a thread at the barrier
    for (std::size_t t = 0; t < thread_count; ++t) {
      if (done[t]) continue;
      handles[t].resume();
      if (handles[t].done()) {
        std::exception_ptr exception = handles[t].promise().exception;
        handles.retire(t);
        done[t] = true;
        ++done_count;
        ++finished_this_pass;
        if (exception) std::rethrow_exception(exception);
      } else {
        STARSIM_REQUIRE(ctxs[t].at_barrier(),
                        "thread suspended outside a barrier");
        ctxs[t].clear_barrier();
        if (first_waiting == thread_count) first_waiting = t;
        ++suspended;
      }
    }
    if (suspended > 0) {
      if (finished_this_pass > 0) {
        const std::string message =
            "__syncthreads divergence in block " + to_string(block_idx) +
            ": " + std::to_string(suspended) + " thread(s) at the barrier, " +
            std::to_string(finished_this_pass) + " exited without it";
        if (sanitizer_enabled(launch.sanitize, SanitizerMode::kSynccheck)) {
          SanitizerFinding finding;
          finding.kind = SanitizerFindingKind::kBarrierDivergence;
          finding.block = block_idx;
          finding.thread = ctxs[first_waiting].thread_idx();
          finding.epoch = block.sync_epoch;
          finding.message = message;
          launch.report_finding(std::move(finding));
          // Abandon the block: HandleSet destroys the stranded coroutines;
          // whatever was counted so far still merges.
          block.finalize_branch_stats();
          launch.merge_block(block.counters);
          return;
        }
        throw support::DeviceError(message);
      }
      // Every warp of the block crosses this barrier once.
      block.counters.barriers += static_cast<std::uint64_t>(block.warps);
      ++block.sync_epoch;
    }
  }

  block.finalize_branch_stats();
  launch.merge_block(block.counters);
}

}  // namespace starsim::gpusim
