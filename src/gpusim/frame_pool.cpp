#include "gpusim/frame_pool.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

namespace starsim::gpusim::detail {

namespace {

// Process-wide aggregate the thread-local counters fold into. Touched only
// on drain/thread-exit/reset, never on the allocation hot path.
std::atomic<std::uint64_t> g_acquired{0};
std::atomic<std::uint64_t> g_reused{0};
std::atomic<std::uint64_t> g_allocated{0};

// One bucket per frame size class; kernels in one process use only a handful
// of distinct frame sizes, so linear search over buckets is effectively O(1).
struct Bucket {
  std::size_t bytes = 0;
  std::vector<void*> frames;
};

struct Pool {
  std::vector<Bucket> buckets;
  FramePoolStats stats;  // this thread's counts since the last flush

  ~Pool() {
    flush_stats();
    for (Bucket& bucket : buckets) {
      for (void* frame : bucket.frames) std::free(frame);
    }
  }

  Bucket& bucket_for(std::size_t bytes) {
    for (Bucket& bucket : buckets) {
      if (bucket.bytes == bytes) return bucket;
    }
    buckets.push_back(Bucket{bytes, {}});
    return buckets.back();
  }

  void flush_stats() {
    g_acquired.fetch_add(stats.acquired, std::memory_order_relaxed);
    g_reused.fetch_add(stats.reused, std::memory_order_relaxed);
    g_allocated.fetch_add(stats.allocated, std::memory_order_relaxed);
    stats = FramePoolStats{};
  }
};

thread_local Pool t_pool;

// Round to cache-line multiples so near-identical kernels share a bucket.
std::size_t size_class(std::size_t bytes) { return (bytes + 63u) & ~63u; }

}  // namespace

void* frame_alloc(std::size_t bytes) {
  Bucket& bucket = t_pool.bucket_for(size_class(bytes));
  t_pool.stats.acquired += 1;
  if (!bucket.frames.empty()) {
    t_pool.stats.reused += 1;
    void* frame = bucket.frames.back();
    bucket.frames.pop_back();
    return frame;
  }
  t_pool.stats.allocated += 1;
  void* frame = std::malloc(size_class(bytes));
  if (frame == nullptr) throw std::bad_alloc();
  return frame;
}

void frame_free(void* ptr, std::size_t bytes) {
  t_pool.bucket_for(size_class(bytes)).frames.push_back(ptr);
}

void frame_pool_drain() {
  t_pool.flush_stats();
  for (Bucket& bucket : t_pool.buckets) {
    for (void* frame : bucket.frames) std::free(frame);
    bucket.frames.clear();
  }
}

std::size_t frame_pool_size() {
  std::size_t total = 0;
  for (const Bucket& bucket : t_pool.buckets) total += bucket.frames.size();
  return total;
}

FramePoolStats frame_pool_stats() {
  FramePoolStats s = t_pool.stats;
  s.acquired += g_acquired.load(std::memory_order_relaxed);
  s.reused += g_reused.load(std::memory_order_relaxed);
  s.allocated += g_allocated.load(std::memory_order_relaxed);
  return s;
}

void frame_pool_stats_reset() {
  t_pool.stats = FramePoolStats{};
  g_acquired.store(0, std::memory_order_relaxed);
  g_reused.store(0, std::memory_order_relaxed);
  g_allocated.store(0, std::memory_order_relaxed);
}

}  // namespace starsim::gpusim::detail
