#include "gpusim/frame_pool.h"

#include <cstdlib>
#include <new>
#include <vector>

namespace starsim::gpusim::detail {

namespace {

// One bucket per frame size class; kernels in one process use only a handful
// of distinct frame sizes, so linear search over buckets is effectively O(1).
struct Bucket {
  std::size_t bytes = 0;
  std::vector<void*> frames;
};

struct Pool {
  std::vector<Bucket> buckets;

  ~Pool() {
    for (Bucket& bucket : buckets) {
      for (void* frame : bucket.frames) std::free(frame);
    }
  }

  Bucket& bucket_for(std::size_t bytes) {
    for (Bucket& bucket : buckets) {
      if (bucket.bytes == bytes) return bucket;
    }
    buckets.push_back(Bucket{bytes, {}});
    return buckets.back();
  }
};

thread_local Pool t_pool;

// Round to cache-line multiples so near-identical kernels share a bucket.
std::size_t size_class(std::size_t bytes) { return (bytes + 63u) & ~63u; }

}  // namespace

void* frame_alloc(std::size_t bytes) {
  Bucket& bucket = t_pool.bucket_for(size_class(bytes));
  if (!bucket.frames.empty()) {
    void* frame = bucket.frames.back();
    bucket.frames.pop_back();
    return frame;
  }
  void* frame = std::malloc(size_class(bytes));
  if (frame == nullptr) throw std::bad_alloc();
  return frame;
}

void frame_free(void* ptr, std::size_t bytes) {
  t_pool.bucket_for(size_class(bytes)).frames.push_back(ptr);
}

void frame_pool_drain() {
  for (Bucket& bucket : t_pool.buckets) {
    for (void* frame : bucket.frames) std::free(frame);
    bucket.frames.clear();
  }
}

std::size_t frame_pool_size() {
  std::size_t total = 0;
  for (const Bucket& bucket : t_pool.buckets) total += bucket.frames.size();
  return total;
}

}  // namespace starsim::gpusim::detail
