// Hardware description of the simulated GPU.
//
// All timing behaviour of gpusim flows from this one struct; the functional
// engine is spec-independent. `gtx480()` is calibrated to NVIDIA's Fermi
// GF100 as used in the paper (15 SMs x 32 SPs @ 1.401 GHz, fp64 peak
// 168 GFLOPS — the "theoretic peak GFlops of 168" the paper quotes in its
// Table II discussion is the Fermi double-precision peak). Effective
// (issue-limited) arithmetic throughput and the PCIe constants were fitted
// once against the paper's Table I/II as documented in DESIGN.md; everything
// else is public Fermi data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace starsim::gpusim {

struct DeviceSpec {
  std::string name = "generic";

  // --- Execution resources -------------------------------------------------
  int sm_count = 15;                  ///< streaming multiprocessors
  int cores_per_sm = 32;              ///< scalar processors per SM
  double core_clock_ghz = 1.401;      ///< shader clock
  int warp_size = 32;
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t max_block_dim_x = 1024;
  std::uint32_t max_block_dim_y = 1024;
  std::uint32_t max_block_dim_z = 64;
  std::uint64_t max_grid_blocks = 65535ull * 65535ull;
  int max_resident_warps_per_sm = 48;
  int max_resident_blocks_per_sm = 8;

  // --- Memory resources -----------------------------------------------------
  std::size_t global_memory_bytes = 1536ull << 20;  ///< 1.5 GB on GTX480
  std::size_t shared_memory_per_block = 48 << 10;
  std::size_t texture_cache_bytes_per_sm = 12 << 10;
  int texture_cache_line_bytes = 32;
  int texture_cache_associativity = 4;

  // --- Arithmetic timing ----------------------------------------------------
  /// fp64 flop-equivalents retired per cycle per SM at full issue (Fermi
  /// GF100: 168 GFLOPS / 15 SMs / 1.401 GHz = 8).
  double fp64_flops_per_cycle_per_sm = 8.0;
  /// Fraction of peak issue a real (mixed arithmetic + control) kernel
  /// sustains; folds dual-issue stalls and instruction mix.
  double issue_efficiency = 0.60;
  /// Cost of one fp64 exp() in flop-equivalents (software on Fermi).
  double exp_flop_equiv = 160.0;
  /// Cost of one fp64 pow() in flop-equivalents.
  double pow_flop_equiv = 200.0;
  /// Cost of one fp64 sqrt() in flop-equivalents.
  double sqrt_flop_equiv = 40.0;
  /// Cost of one fp64 erf() in flop-equivalents (pixel-integrated PSF).
  double erf_flop_equiv = 120.0;

  // --- Memory geometry ---------------------------------------------------------
  int shared_memory_banks = 32;        ///< Fermi: 32 banks ...
  int shared_bank_width_bytes = 4;     ///< ... of 4 bytes each
  int global_transaction_bytes = 128;  ///< coalescing segment size

  // --- Memory timing ---------------------------------------------------------
  double global_latency_cycles = 500.0;
  double global_bandwidth_gbps = 177.4;       ///< device memory bandwidth
  double shared_accesses_per_cycle_per_sm = 16.0;
  /// Cycles one bank-conflict pass adds on its SM.
  double shared_conflict_cycles = 1.0;
  double texture_fetches_per_cycle_per_sm = 1.0;  ///< on cache hit
  double texture_miss_latency_cycles = 400.0;
  double atomic_ops_per_cycle_per_sm = 0.5;
  double atomic_conflict_retry_cycles = 200.0;
  double barrier_cycles = 30.0;
  /// Extra cycles a divergent warp-branch costs (both paths issued).
  double divergence_penalty_cycles = 20.0;

  // --- Latency hiding --------------------------------------------------------
  /// Resident warps per SM needed before latency-bound issue saturates.
  int warps_to_saturate_per_sm = 24;

  // --- Host link and launch --------------------------------------------------
  double kernel_launch_overhead_s = 8e-6;
  double pcie_latency_s = 25e-6;              ///< fixed cost per transfer call
  double pcie_bandwidth_gbps = 3.6;           ///< pageable host memory
  /// Page-locked (cudaHostAlloc) staging removes the driver's bounce
  /// buffer — the transmission optimization the paper's reference [10]
  /// recommends.
  double pcie_pinned_bandwidth_gbps = 5.9;
  double texture_bind_s = 0.21e-3;            ///< cudaBindTexture cost

  // --- Derived ----------------------------------------------------------------
  [[nodiscard]] double clock_hz() const { return core_clock_ghz * 1e9; }
  [[nodiscard]] double seconds_per_cycle() const { return 1.0 / clock_hz(); }
  /// Device-wide fp64 peak in flop-equivalents per second.
  [[nodiscard]] double peak_fp64_flops() const {
    return sm_count * fp64_flops_per_cycle_per_sm * clock_hz();
  }
  /// Issue-limited sustained arithmetic throughput.
  [[nodiscard]] double effective_fp64_flops() const {
    return peak_fp64_flops() * issue_efficiency;
  }
  /// Warp count at which the whole device saturates.
  [[nodiscard]] double saturation_warps() const {
    return static_cast<double>(sm_count) * warps_to_saturate_per_sm;
  }

  /// 64-bit FNV-1a over every field of the spec (numeric fields by bit
  /// pattern, the name byte-wise). Two specs with the same fingerprint
  /// produce identical modeled times for identical work, so schedule
  /// caches and other perf-model memoizations key on it: any edit to a
  /// timing parameter invalidates everything derived from the old spec.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The paper's evaluation platform.
  static DeviceSpec gtx480();

  /// Fermi refresh (GF110): 16 SMs @ 1.544 GHz, 198 GFLOPS fp64. Used by
  /// the device-generation study to show the selection rule shifting with
  /// hardware.
  static DeviceSpec gtx580();

  /// Kepler GK110 (Tesla K20-class): 13 SMX, 1.17 TFLOPS fp64, large
  /// read-only/texture cache — the generation the paper's future-work
  /// section anticipates.
  static DeviceSpec k20();

  /// A deliberately small device for unit tests (2 SMs, tiny memory) so
  /// resource-exhaustion paths are exercisable without gigabyte buffers.
  static DeviceSpec test_small();
};

}  // namespace starsim::gpusim
