// gpusim's compute-sanitizer analog: opt-in instrumentation of the
// simulated device that turns silent kernel defects into structured
// findings.
//
// Four independently selectable tools mirror NVIDIA's compute-sanitizer:
//   memcheck  — bounds- and initialization-checked global accesses,
//               use-after-free (allocation generations), double free;
//   racecheck — per-shared-memory-word shadow state flagging R/W and W/W
//               hazards between block threads not separated by a
//               __syncthreads barrier epoch;
//   synccheck — divergent-barrier detection (threads of a block that exit
//               while siblings wait at __syncthreads);
//   leakcheck — unfreed device allocations and still-bound textures at
//               device teardown.
//
// Findings carry the failing block/thread coordinates, the allocation and
// byte address involved, and the barrier epoch — enough to locate the
// defect without a debugger. A sanitized launch *suppresses* the bad access
// (loads return 0, stores are dropped) and keeps running so one kernel run
// reports every defect, unlike the off-mode contract where the first
// out-of-contract access throws. Off mode costs one predictable branch per
// instrumented site (see docs/gpusim.md for measurements).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/dim.h"

namespace starsim::gpusim {

/// Bitmask of enabled sanitizer tools; settable per Device or per launch.
enum class SanitizerMode : std::uint8_t {
  kOff = 0,
  kMemcheck = 1 << 0,
  kRacecheck = 1 << 1,
  kSynccheck = 1 << 2,
  kLeakcheck = 1 << 3,
  kAll = kMemcheck | kRacecheck | kSynccheck | kLeakcheck,
};

[[nodiscard]] constexpr SanitizerMode operator|(SanitizerMode a,
                                                SanitizerMode b) {
  return static_cast<SanitizerMode>(static_cast<std::uint8_t>(a) |
                                    static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr SanitizerMode operator&(SanitizerMode a,
                                                SanitizerMode b) {
  return static_cast<SanitizerMode>(static_cast<std::uint8_t>(a) &
                                    static_cast<std::uint8_t>(b));
}

/// True when `tool` (one of the mode bits) is enabled in `mode`.
[[nodiscard]] constexpr bool sanitizer_enabled(SanitizerMode mode,
                                               SanitizerMode tool) {
  return (mode & tool) != SanitizerMode::kOff;
}

/// Parse a CLI-style mode name: off|memcheck|race|sync|leak|all (also
/// accepts the long forms racecheck/synccheck/leakcheck). Throws
/// support::PreconditionError on anything else.
[[nodiscard]] SanitizerMode sanitizer_mode_from_string(std::string_view name);

[[nodiscard]] std::string to_string(SanitizerMode mode);

/// What a finding is about; each kind belongs to exactly one tool.
enum class SanitizerFindingKind : std::uint8_t {
  // memcheck
  kGlobalOutOfBounds = 0,
  kSharedOutOfBounds,
  kUninitializedRead,
  kUseAfterFree,
  kInvalidTextureFetch,
  // racecheck
  kSharedRace,
  // synccheck
  kBarrierDivergence,
  // leakcheck
  kLeakedAllocation,
  kLeakedTexture,
};

[[nodiscard]] std::string_view to_string(SanitizerFindingKind kind);

/// One detected defect. Device-side findings carry the block/thread that
/// performed the access; host-side findings (leaks) leave them (0,0,0).
struct SanitizerFinding {
  SanitizerFindingKind kind = SanitizerFindingKind::kGlobalOutOfBounds;
  Dim3 block;
  Dim3 thread;
  /// Global allocation id, or the shared-array slot index for shared-memory
  /// findings; 0xffffffff when no allocation is involved.
  std::uint32_t allocation_id = 0xffffffffu;
  /// Byte offset of the access within the allocation (global) or the
  /// block's shared-memory arena (shared/race findings).
  std::uint64_t address = 0;
  /// Barrier epoch of the access: __syncthreads crossings the block had
  /// completed when the finding was recorded.
  std::uint32_t epoch = 0;
  std::string message;

  /// One-line rendering: "[kind] block (..) thread (..) ...: message".
  [[nodiscard]] std::string describe() const;
};

/// Everything the sanitizer found during one launch (or accumulated across
/// launches at the Device level). Collection is capped at kMaxFindings to
/// bound memory on pathological kernels; total_findings keeps the true
/// count.
struct SanitizerReport {
  static constexpr std::size_t kMaxFindings = 256;

  SanitizerMode mode = SanitizerMode::kOff;
  std::vector<SanitizerFinding> findings;
  std::uint64_t total_findings = 0;

  [[nodiscard]] bool clean() const { return total_findings == 0; }
  [[nodiscard]] std::uint64_t count(SanitizerFindingKind kind) const;

  /// Record a finding (drops the payload past the cap, always counts).
  void add(SanitizerFinding finding);
  void merge(const SanitizerReport& other);

  /// Multi-line human-readable summary: per-kind totals followed by the
  /// retained findings, one per line.
  [[nodiscard]] std::string summary() const;
};

}  // namespace starsim::gpusim
