// Simulated 2-D texture objects.
//
// The adaptive simulator binds its lookup table to texture memory; the two
// properties the paper exploits are modeled explicitly:
//   1. 2-D spatial locality — texel (x, y) maps to a Morton (block-linear)
//      cache address, so neighboring texels share cache lines in both axes;
//   2. the texture cache — fetches are classified hit/miss by the per-SM
//      SetAssociativeCache instances owned by the Device.
// Textures are float-valued with nearest (point) sampling and integer
// coordinates, which is exactly how the lookup table is addressed.
#pragma once

#include <cstdint>

#include "gpusim/device_memory.h"
#include "gpusim/morton.h"

namespace starsim::gpusim {

/// Out-of-range coordinate handling, mirroring cudaAddressMode.
enum class AddressMode {
  kClamp,   ///< coordinates clamp to the valid range
  kBorder,  ///< out-of-range fetches return the border value
};

/// Opaque handle returned by Device::bind_texture_2d.
struct TextureHandle {
  std::uint32_t index = 0xffffffffu;
  [[nodiscard]] bool valid() const { return index != 0xffffffffu; }
  bool operator==(const TextureHandle&) const = default;
};

class Texture2D {
 public:
  /// `data` must hold at least width*height floats laid out row-major.
  Texture2D(DevicePtr<float> data, int width, int height, AddressMode mode,
            float border_value = 0.0f);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] AddressMode mode() const { return mode_; }
  [[nodiscard]] float border_value() const { return border_value_; }
  [[nodiscard]] std::size_t bytes() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) *
           sizeof(float);
  }

  /// True while the backing allocation is live; a texture whose buffer was
  /// freed is a use-after-free the sanitizer reports on fetch.
  [[nodiscard]] bool backing_live() const { return data_.is_live(); }
  [[nodiscard]] std::uint32_t allocation_id() const {
    return data_.allocation_id();
  }

  /// Apply the address mode. Returns false when the fetch resolves to the
  /// border value (x, y untouched); true with clamped coordinates otherwise.
  [[nodiscard]] bool resolve(int& x, int& y) const;

  /// Texel value at in-range coordinates.
  [[nodiscard]] float value(int x, int y) const {
    return data_.raw()[static_cast<std::size_t>(y) *
                           static_cast<std::size_t>(width_) +
                       static_cast<std::size_t>(x)];
  }

  /// Cache-model address of texel (x, y): Morton-interleaved within the
  /// texture, offset by the allocation id so distinct textures never alias.
  [[nodiscard]] std::uint64_t cache_address(int x, int y) const {
    return (static_cast<std::uint64_t>(data_.allocation_id()) << 40) +
           static_cast<std::uint64_t>(
               morton_encode(static_cast<std::uint32_t>(x),
                             static_cast<std::uint32_t>(y))) *
               sizeof(float);
  }

 private:
  DevicePtr<float> data_;
  int width_;
  int height_;
  AddressMode mode_;
  float border_value_;
};

}  // namespace starsim::gpusim
