// Mutable state of one in-flight kernel launch, plus the per-block slice.
//
// LaunchState is created by Device::launch and shared (read-mostly) by all
// block executions; the only cross-block mutable pieces are guarded: counter
// merging, atomic shadow counters, and the per-SM texture caches.
// BlockState is private to the single OS thread executing that block, so
// its counters and shared-memory arena need no synchronization.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/dim.h"
#include "gpusim/sanitizer.h"
#include "gpusim/texture.h"
#include "support/error.h"

namespace starsim::gpusim {

struct LaunchState {
  const DeviceSpec* spec = nullptr;
  LaunchConfig config;
  /// True when blocks may execute on multiple OS threads; shared structures
  /// then take their locks (skipped in serial mode for speed/determinism).
  bool parallel_blocks = false;
  /// Warp-level access grouping (bank conflicts, coalescing). Costs a few
  /// percent of functional-execution speed; Device exposes a switch.
  bool track_warp_access = true;
  /// Sanitizer tools active for this launch (Device default or per-launch
  /// override). kOff keeps every instrumentation site to one branch.
  SanitizerMode sanitize = SanitizerMode::kOff;

  // Texture machinery, borrowed from the owning Device for the duration of
  // the launch. Caches are indexed by simulated SM id.
  const std::vector<std::optional<Texture2D>>* textures = nullptr;
  std::vector<SetAssociativeCache>* sm_caches = nullptr;
  std::mutex* sm_cache_mutexes = nullptr;  // array of spec->sm_count mutexes

  // --- Atomic conflict shadow counters --------------------------------------
  // For every allocation that receives atomics this launch, a per-element
  // op count; after the launch, each element with count c > 1 contributes
  // c-1 conflicts (ops that had to queue behind another op on the address).
  struct Shadow {
    std::unique_ptr<std::atomic<std::uint32_t>[]> counts;
    std::size_t size = 0;
  };
  std::mutex shadow_mutex;
  std::unordered_map<std::uint32_t, Shadow> shadows;

  /// Shadow array for `alloc_id`, created (zeroed) on first use.
  std::atomic<std::uint32_t>* shadow_for(std::uint32_t alloc_id,
                                         std::size_t element_count) {
    const std::lock_guard<std::mutex> lock(shadow_mutex);
    Shadow& shadow = shadows[alloc_id];
    if (!shadow.counts) {
      shadow.counts =
          std::make_unique<std::atomic<std::uint32_t>[]>(element_count);
      shadow.size = element_count;
      for (std::size_t i = 0; i < element_count; ++i) {
        shadow.counts[i].store(0, std::memory_order_relaxed);
      }
    }
    return shadow.counts.get();
  }

  /// Sum of (ops-1) over all addresses hit by more than one atomic.
  [[nodiscard]] std::uint64_t total_atomic_conflicts() const {
    std::uint64_t conflicts = 0;
    for (const auto& [id, shadow] : shadows) {
      for (std::size_t i = 0; i < shadow.size; ++i) {
        const std::uint32_t c =
            shadow.counts[i].load(std::memory_order_relaxed);
        if (c > 1) conflicts += c - 1;
      }
    }
    return conflicts;
  }

  // --- Result accumulation ----------------------------------------------------
  std::mutex merge_mutex;
  KernelCounters totals;

  void merge_block(const KernelCounters& block_counters) {
    if (parallel_blocks) {
      const std::lock_guard<std::mutex> lock(merge_mutex);
      totals.merge(block_counters);
    } else {
      totals.merge(block_counters);
    }
  }

  [[nodiscard]] const Texture2D& texture(TextureHandle handle) const {
    STARSIM_REQUIRE(textures != nullptr && handle.index < textures->size() &&
                        (*textures)[handle.index].has_value(),
                    "fetch through invalid or unbound texture handle");
    return *(*textures)[handle.index];
  }

  /// Non-throwing lookup for the sanitizer's pre-validation of fetches.
  [[nodiscard]] const Texture2D* texture_or_null(TextureHandle handle) const {
    if (textures == nullptr || handle.index >= textures->size() ||
        !(*textures)[handle.index].has_value()) {
      return nullptr;
    }
    return &*(*textures)[handle.index];
  }

  // --- Sanitizer findings -----------------------------------------------------
  std::mutex sanitizer_mutex;
  SanitizerReport sanitizer_report;

  void report_finding(SanitizerFinding finding) {
    if (parallel_blocks) {
      const std::lock_guard<std::mutex> lock(sanitizer_mutex);
      sanitizer_report.add(std::move(finding));
    } else {
      sanitizer_report.add(std::move(finding));
    }
  }
};

/// Groups the memory accesses a warp's threads issue at the same program
/// point ("same point" = equal per-thread access sequence number for the
/// access class, the standard SIMT lockstep assumption). From those groups
/// the block derives bank conflicts (shared memory) and coalesced
/// transaction counts (global memory) when it retires.
class WarpAccessTracker {
 public:
  void record(std::size_t warp, std::uint32_t seq, std::uint64_t address) {
    if (warp >= warps_.size()) warps_.resize(warp + 1);
    auto& slots = warps_[warp];
    if (seq >= slots.size()) slots.resize(seq + 1);
    Slot& slot = slots[seq];
    if (slot.count < kWarpCapacity) {
      slot.addresses[slot.count++] = address;
    }
  }

  /// Extra serialized passes from distinct-address same-bank collisions
  /// (bank index = (address / bank_width) % banks; same-address accesses
  /// broadcast for free).
  [[nodiscard]] std::uint64_t bank_conflicts(int banks,
                                             int bank_width_bytes) const;

  /// Memory transactions after coalescing into `segment_bytes` segments.
  [[nodiscard]] std::uint64_t transactions(int segment_bytes) const;

 private:
  static constexpr std::uint8_t kWarpCapacity = 32;
  struct Slot {
    std::array<std::uint64_t, kWarpCapacity> addresses;
    std::uint8_t count = 0;
  };
  std::vector<std::vector<Slot>> warps_;
};

inline std::uint64_t WarpAccessTracker::bank_conflicts(
    int banks, int bank_width_bytes) const {
  std::uint64_t conflicts = 0;
  std::vector<std::uint8_t> per_bank(static_cast<std::size_t>(banks));
  std::vector<std::uint64_t> seen;
  seen.reserve(kWarpCapacity);
  for (const auto& slots : warps_) {
    for (const Slot& slot : slots) {
      if (slot.count < 2) continue;
      std::fill(per_bank.begin(), per_bank.end(), std::uint8_t{0});
      seen.clear();
      std::uint8_t worst = 1;
      for (std::uint8_t i = 0; i < slot.count; ++i) {
        const std::uint64_t address = slot.addresses[i];
        bool duplicate = false;
        for (std::uint64_t other : seen) {
          if (other == address) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;  // broadcast: same address is free
        seen.push_back(address);
        const auto bank = static_cast<std::size_t>(
            (address / static_cast<std::uint64_t>(bank_width_bytes)) %
            static_cast<std::uint64_t>(banks));
        worst = std::max(worst, static_cast<std::uint8_t>(++per_bank[bank]));
      }
      conflicts += static_cast<std::uint64_t>(worst) - 1;
    }
  }
  return conflicts;
}

inline std::uint64_t WarpAccessTracker::transactions(
    int segment_bytes) const {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> segments;
  segments.reserve(kWarpCapacity);
  for (const auto& slots : warps_) {
    for (const Slot& slot : slots) {
      if (slot.count == 0) continue;
      segments.clear();
      for (std::uint8_t i = 0; i < slot.count; ++i) {
        const std::uint64_t segment =
            slot.addresses[i] / static_cast<std::uint64_t>(segment_bytes);
        bool duplicate = false;
        for (std::uint64_t other : segments) {
          if (other == segment) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) segments.push_back(segment);
      }
      total += segments.size();
    }
  }
  return total;
}

/// Per-block execution state; lives on the stack of the OS thread running
/// the block.
struct BlockState {
  static constexpr int kMaxBranchSites = 16;

  LaunchState* launch = nullptr;
  Dim3 block_idx;
  std::uint64_t block_linear = 0;
  int sm_id = 0;
  int warps = 0;
  KernelCounters counters;

  // Shared memory: allocations are made in program order by the first
  // thread to execute each ctx.shared_array() call; later threads attach by
  // call sequence, mirroring CUDA's static __shared__ declarations.
  struct SharedAlloc {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
    std::size_t base_offset = 0;  ///< position in the block's arena

    /// Racecheck shadow: one cell per 4-byte word, tracking the last access
    /// in the current barrier epoch. Two different threads touching the
    /// same word in the same epoch with at least one write is a hazard.
    /// Empty (never allocated) unless racecheck is on.
    struct RaceCell {
      std::int64_t write_epoch = -1;
      std::uint32_t writer = 0;
      std::int64_t read_epoch = -1;
      std::uint32_t reader = 0;
      bool multiple_readers = false;
      bool flagged = false;  ///< one finding per word, not per access
    };
    std::vector<RaceCell> race;
  };
  std::vector<SharedAlloc> shared_allocs;
  std::size_t shared_used = 0;

  /// __syncthreads crossings completed so far — the racecheck epoch. Two
  /// accesses with the same epoch value have no barrier between them.
  std::uint32_t sync_epoch = 0;

  // Branch outcome tallies: [warp][site][taken]. A site evaluated with both
  // outcomes inside one warp is a divergent warp-branch.
  using SiteCounts = std::array<std::array<std::uint32_t, 2>, kMaxBranchSites>;
  std::vector<SiteCounts> branch_counts;

  // Block-level cache of the launch's shadow array for the most recent
  // atomic destination (kernels direct nearly all atomics at one buffer).
  std::uint32_t shadow_alloc_id = 0xffffffffu;
  std::atomic<std::uint32_t>* shadow = nullptr;

  // Warp-level access grouping (see WarpAccessTracker).
  WarpAccessTracker shared_access;
  WarpAccessTracker global_access;

  BlockState(LaunchState& launch_state, const Dim3& idx)
      : launch(&launch_state), block_idx(idx) {
    block_linear = launch_state.config.grid.linear(idx);
    sm_id = static_cast<int>(
        block_linear % static_cast<std::uint64_t>(launch_state.spec->sm_count));
    const std::uint64_t threads = launch_state.config.block.count();
    warps = static_cast<int>(
        (threads + static_cast<std::uint64_t>(launch_state.spec->warp_size) - 1) /
        static_cast<std::uint64_t>(launch_state.spec->warp_size));
    branch_counts.assign(static_cast<std::size_t>(warps), SiteCounts{});
    counters.blocks_launched = 1;
    counters.threads_launched = threads;
    counters.warps_launched = static_cast<std::uint64_t>(warps);
  }

  /// Fold branch tallies into the divergence counters (runner calls this
  /// once when the block retires).
  void finalize_branch_stats() {
    for (const SiteCounts& per_warp : branch_counts) {
      for (const auto& site : per_warp) {
        const bool any = site[0] > 0 || site[1] > 0;
        if (!any) continue;
        ++counters.branch_sites_evaluated;
        if (site[0] > 0 && site[1] > 0) ++counters.divergent_warp_branches;
      }
    }
    if (launch->track_warp_access) {
      counters.shared_bank_conflicts = shared_access.bank_conflicts(
          launch->spec->shared_memory_banks,
          launch->spec->shared_bank_width_bytes);
      counters.global_transactions = global_access.transactions(
          launch->spec->global_transaction_bytes);
    }
  }
};

}  // namespace starsim::gpusim
