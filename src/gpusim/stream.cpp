#include "gpusim/stream.h"

#include <algorithm>

#include "gpusim/fault_injector.h"
#include "support/error.h"
#include "trace/trace.h"

namespace starsim::gpusim {

StreamScheduler::StreamScheduler(int copy_engines)
    : copy_engines_(copy_engines) {
  STARSIM_REQUIRE(copy_engines == 1 || copy_engines == 2,
                  "devices expose one or two copy engines");
}

StreamId StreamScheduler::create_stream() {
  streams_.push_back(0.0);
  return StreamId{static_cast<std::uint32_t>(streams_.size() - 1)};
}

StreamScheduler::EngineState& StreamScheduler::engine_state(Engine engine) {
  switch (engine) {
    case Engine::kCompute: return compute_;
    case Engine::kCopyH2D: return h2d_;
    case Engine::kCopyD2H: return copy_engines_ == 1 ? h2d_ : d2h_;
  }
  return compute_;
}

const StreamScheduler::EngineState& StreamScheduler::engine_state(
    Engine engine) const {
  return const_cast<StreamScheduler*>(this)->engine_state(engine);
}

double StreamScheduler::enqueue(StreamId stream, Engine engine,
                                double duration_s) {
  STARSIM_REQUIRE(stream.valid() && stream.index < streams_.size(),
                  "unknown stream");
  STARSIM_REQUIRE(duration_s >= 0.0, "operation duration must be >= 0");
  if (injector_ != nullptr) [[unlikely]] {
    injector_->on_stream_enqueue();
  }
  EngineState& eng = engine_state(engine);
  double& stream_tail = streams_[stream.index];
  const double start = std::max(eng.available_at, stream_tail);
  const double end = start + duration_s;
  eng.available_at = end;
  eng.busy += duration_s;
  stream_tail = end;
  if (trace::tracing_on()) [[unlikely]] {
    const char* engine_name = engine == Engine::kCompute    ? "compute"
                              : engine == Engine::kCopyH2D  ? "copy_h2d"
                                                            : "copy_d2h";
    trace::instant("gpusim", "stream_enqueue",
                   {{"stream", static_cast<std::int64_t>(stream.index)},
                    {"engine", std::string(engine_name)},
                    {"duration_s", duration_s},
                    {"completes_at_s", end}});
  }
  return end;
}

double StreamScheduler::stream_end(StreamId stream) const {
  STARSIM_REQUIRE(stream.valid() && stream.index < streams_.size(),
                  "unknown stream");
  return streams_[stream.index];
}

double StreamScheduler::makespan() const {
  double end = std::max({h2d_.available_at, d2h_.available_at,
                         compute_.available_at});
  for (double tail : streams_) end = std::max(end, tail);
  return end;
}

double StreamScheduler::engine_busy(Engine engine) const {
  return engine_state(engine).busy;
}

void StreamScheduler::reset() {
  h2d_ = EngineState{};
  d2h_ = EngineState{};
  compute_ = EngineState{};
  std::fill(streams_.begin(), streams_.end(), 0.0);
}

}  // namespace starsim::gpusim
