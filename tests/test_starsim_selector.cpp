#include "starsim/selector.h"

#include <gtest/gtest.h>

#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::Prediction;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::SimulatorSelector;

SceneConfig paper_scene(int roi = 10) {
  SceneConfig scene;  // 1024 x 1024
  scene.roi_side = roi;
  return scene;
}

TEST(Selector, SequentialWinsTinyFields) {
  // Section IV-D: "when the star image is in a very small-scale (num of
  // stars: 0~2^7), the sequential simulator on CPU can be a competent
  // choice".
  const SimulatorSelector selector;
  EXPECT_EQ(selector.choose(paper_scene(), 8), SimulatorKind::kSequential);
  EXPECT_EQ(selector.choose(paper_scene(), 32), SimulatorKind::kSequential);
}

TEST(Selector, GpuWinsLargeFields) {
  const SimulatorSelector selector;
  const SimulatorKind choice = selector.choose(paper_scene(), 1 << 14);
  EXPECT_NE(choice, SimulatorKind::kSequential);
}

TEST(Selector, ParallelBeforeInflectionAdaptiveAfter) {
  // Table III at ROI 10: parallel below the star-count inflection,
  // adaptive above it.
  const SimulatorSelector selector;
  EXPECT_EQ(selector.predict(paper_scene(), 1 << 9).best_gpu,
            SimulatorKind::kParallel);
  EXPECT_EQ(selector.predict(paper_scene(), 1 << 17).best_gpu,
            SimulatorKind::kAdaptive);
}

TEST(Selector, RoiInflectionAtFixedStars) {
  // Table III at 8192 stars: parallel for small ROI, adaptive for large.
  const SimulatorSelector selector;
  EXPECT_EQ(selector.predict(paper_scene(2), starsim::kTest2StarCount).best_gpu,
            SimulatorKind::kParallel);
  EXPECT_EQ(
      selector.predict(paper_scene(20), starsim::kTest2StarCount).best_gpu,
      SimulatorKind::kAdaptive);
}

TEST(Selector, GpuChoiceSwitchesExactlyOnceAlongStarSweep) {
  const SimulatorSelector selector;
  int switches = 0;
  SimulatorKind previous =
      selector.predict(paper_scene(), 32).best_gpu;
  for (std::size_t n : starsim::test1_star_counts()) {
    const SimulatorKind current = selector.predict(paper_scene(), n).best_gpu;
    if (current != previous) ++switches;
    previous = current;
  }
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(previous, SimulatorKind::kAdaptive);
}

TEST(Selector, GpuChoiceSwitchesExactlyOnceAlongRoiSweep) {
  const SimulatorSelector selector;
  int switches = 0;
  SimulatorKind previous =
      selector.predict(paper_scene(2), starsim::kTest2StarCount).best_gpu;
  for (int side : starsim::test2_roi_sides()) {
    const SimulatorKind current =
        selector.predict(paper_scene(side), starsim::kTest2StarCount).best_gpu;
    if (current != previous) ++switches;
    previous = current;
  }
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(previous, SimulatorKind::kAdaptive);
}

TEST(Selector, PredictionTimesPositiveAndOrdered) {
  const SimulatorSelector selector;
  const Prediction p = selector.predict(paper_scene(), 8192);
  EXPECT_GT(p.sequential_s, 0.0);
  EXPECT_GT(p.parallel.application_s(), 0.0);
  EXPECT_GT(p.adaptive.application_s(), 0.0);
  // At 8192 stars the GPUs crush the CPU by orders of magnitude.
  EXPECT_GT(p.sequential_s / p.parallel.application_s(), 10.0);
}

TEST(Selector, AdaptiveCarriesFixedExtraNonKernelCost) {
  const SimulatorSelector selector;
  const Prediction p = selector.predict(paper_scene(), 1 << 10);
  const double extra =
      p.adaptive.non_kernel_s() - p.parallel.non_kernel_s();
  // Table I: LUT build (~0.71 ms) + texture binding (~0.21 ms) + LUT
  // upload (tiny). The paper's 0.92 ms penalty.
  EXPECT_NEAR(extra, 0.92e-3, 0.25e-3);
}

TEST(Selector, SequentialFlopsScaleLinearlyInStarsAndArea) {
  const SimulatorSelector selector;
  const auto base = selector.predict_sequential_flops(paper_scene(10), 100);
  EXPECT_EQ(selector.predict_sequential_flops(paper_scene(10), 200), 2 * base);
  // Quadrupling ROI area roughly quadruples flops (minus per-star terms).
  const auto big = selector.predict_sequential_flops(paper_scene(20), 100);
  EXPECT_GT(big, 3 * base);
  EXPECT_LT(big, 4 * base);
}

TEST(Selector, PredictedCountersScaleWithGeometry) {
  const SimulatorSelector selector;
  const auto small = selector.predict_parallel_counters(paper_scene(10), 64);
  const auto large = selector.predict_parallel_counters(paper_scene(10), 128);
  EXPECT_EQ(large.atomic_ops, 2 * small.atomic_ops);
  EXPECT_EQ(large.threads_launched, 2 * small.threads_launched);
}

TEST(Selector, UtilizationRampVisibleInPredictions) {
  const SimulatorSelector selector;
  const Prediction small = selector.predict(paper_scene(), 32);
  const Prediction large = selector.predict(paper_scene(), 1 << 15);
  EXPECT_LT(small.parallel.utilization, 0.5);
  EXPECT_DOUBLE_EQ(large.parallel.utilization, 1.0);
}

TEST(Selector, RejectsZeroStars) {
  const SimulatorSelector selector;
  EXPECT_THROW((void)selector.predict_parallel_counters(paper_scene(), 0),
               starsim::support::PreconditionError);
}

TEST(Selector, ExplicitPreferenceOverridesCostModel) {
  const SimulatorSelector selector;
  // 8 stars: the cost model says sequential (see SequentialWinsTinyFields),
  // but a pinned preference must win without consulting the model.
  EXPECT_EQ(selector.choose(paper_scene(), 8, SimulatorKind::kAdaptive),
            SimulatorKind::kAdaptive);
  EXPECT_EQ(selector.choose(paper_scene(), 1 << 17, SimulatorKind::kSequential),
            SimulatorKind::kSequential);
  // The preference path never runs the star-count-sensitive predictors, so
  // zero stars is fine there.
  EXPECT_EQ(selector.choose(paper_scene(), 0, SimulatorKind::kParallel),
            SimulatorKind::kParallel);
}

TEST(Selector, UnsetPreferenceFallsThroughToCostModel) {
  const SimulatorSelector selector;
  EXPECT_EQ(selector.choose(paper_scene(), 8, std::nullopt),
            selector.choose(paper_scene(), 8));
  EXPECT_EQ(selector.choose(paper_scene(), 1 << 14, std::nullopt),
            selector.choose(paper_scene(), 1 << 14));
}

TEST(Selector, PreferencePathStillValidatesScene) {
  const SimulatorSelector selector;
  SceneConfig bad = paper_scene();
  bad.roi_side = 0;
  EXPECT_THROW((void)selector.choose(bad, 8, SimulatorKind::kParallel),
               starsim::support::PreconditionError);
}

TEST(Selector, CustomLutGeometryShiftsAdaptiveCost) {
  starsim::LookupTableOptions fine;
  fine.bins_per_magnitude = 64;
  const SimulatorSelector coarse_sel;
  const SimulatorSelector fine_sel(gs::DeviceSpec::gtx480(),
                                   gs::HostSpec::i7_860(), fine);
  const double coarse_build =
      coarse_sel.predict(paper_scene(), 1024).adaptive.lut_build_s;
  const double fine_build =
      fine_sel.predict(paper_scene(), 1024).adaptive.lut_build_s;
  EXPECT_GT(fine_build, coarse_build * 10.0);
}

}  // namespace
