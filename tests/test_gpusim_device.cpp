#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::support::DeviceError;
using starsim::support::PreconditionError;

gs::ThreadProgram noop_kernel(gs::ThreadCtx& ctx) {
  (void)ctx;
  co_return;
}

TEST(Device, TransfersPreserveData) {
  gs::Device dev(gs::DeviceSpec::test_small());
  std::vector<float> host(1000);
  std::iota(host.begin(), host.end(), 0.0f);
  auto d = dev.malloc<float>(1000);
  dev.memcpy_h2d(d, std::span<const float>(host));
  std::vector<float> back(1000, -1.0f);
  dev.memcpy_d2h(std::span<float>(back), d);
  EXPECT_EQ(back, host);
  dev.free(d);
}

TEST(Device, TransferStatsAccumulate) {
  gs::Device dev(gs::DeviceSpec::test_small());
  dev.reset_transfer_stats();
  std::vector<float> host(256, 1.0f);
  auto d = dev.malloc<float>(256);
  dev.memcpy_h2d(d, std::span<const float>(host));
  dev.memcpy_d2h(std::span<float>(host), d);
  const gs::TransferStats& stats = dev.transfer_stats();
  EXPECT_EQ(stats.h2d_calls, 1u);
  EXPECT_EQ(stats.d2h_calls, 1u);
  EXPECT_EQ(stats.h2d_bytes, 1024u);
  EXPECT_EQ(stats.d2h_bytes, 1024u);
  EXPECT_GT(stats.h2d_s, 0.0);
  EXPECT_GT(stats.d2h_s, 0.0);
  dev.free(d);
}

TEST(Device, TransferTimeMatchesModel) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::Device dev(spec);
  std::vector<float> host(1 << 20);  // 4 MiB
  auto d = dev.malloc<float>(host.size());
  dev.reset_transfer_stats();
  dev.memcpy_h2d(d, std::span<const float>(host));
  const double expected =
      spec.pcie_latency_s + 4.0 * (1 << 20) / (spec.pcie_bandwidth_gbps * 1e9);
  EXPECT_DOUBLE_EQ(dev.transfer_stats().h2d_s, expected);
  dev.free(d);
}

TEST(Device, PartialH2dCopyAllowed) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<int>(10);
  const std::vector<int> host{1, 2, 3};
  dev.memcpy_h2d(d, std::span<const int>(host));
  std::vector<int> back(10);
  dev.memcpy_d2h(std::span<int>(back), d);
  EXPECT_EQ(back[0], 1);
  EXPECT_EQ(back[2], 3);
  dev.free(d);
}

TEST(Device, OversizeH2dRejected) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<int>(4);
  const std::vector<int> host(5);
  try {
    dev.memcpy_h2d(d, std::span<const int>(host));
    FAIL() << "expected SanitizerError";
  } catch (const starsim::support::SanitizerError& error) {
    // Typed defect: never retryable, names the handle and both extents.
    EXPECT_FALSE(error.retryable());
    const std::string what = error.what();
    EXPECT_NE(what.find("h2d copy of 5"), std::string::npos) << what;
    EXPECT_NE(what.find("allocation #" + std::to_string(d.allocation_id())),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("of 4 element(s)"), std::string::npos) << what;
  }
  dev.free(d);
}

TEST(Device, UndersizedD2hRejected) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<int>(8);
  std::vector<int> host(4);
  try {
    dev.memcpy_d2h(std::span<int>(host), d);
    FAIL() << "expected SanitizerError";
  } catch (const starsim::support::SanitizerError& error) {
    EXPECT_FALSE(error.retryable());
    const std::string what = error.what();
    EXPECT_NE(what.find("host buffer of 4"), std::string::npos) << what;
  }
  dev.free(d);
}

TEST(Device, MemsetZeroClearsWithoutPcieTraffic) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<float>(64);
  std::vector<float> host(64, 3.0f);
  dev.memcpy_h2d(d, std::span<const float>(host));
  dev.reset_transfer_stats();
  dev.memset_zero(d);
  EXPECT_EQ(dev.transfer_stats().h2d_bytes, 0u);
  dev.memcpy_d2h(std::span<float>(host), d);
  for (float v : host) EXPECT_EQ(v, 0.0f);
  dev.free(d);
}

TEST(Device, TextureBindAccruesModeledCost) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::Device dev(spec);
  auto d = dev.malloc<float>(64);
  dev.reset_transfer_stats();
  const gs::TextureHandle t =
      dev.bind_texture_2d(d, 8, 8, gs::AddressMode::kClamp);
  EXPECT_EQ(dev.transfer_stats().texture_binds, 1u);
  EXPECT_DOUBLE_EQ(dev.transfer_stats().texture_bind_s, spec.texture_bind_s);
  EXPECT_EQ(dev.bound_texture_count(), 1u);
  dev.unbind_texture(t);
  EXPECT_EQ(dev.bound_texture_count(), 0u);
  dev.free(d);
}

TEST(Device, TextureSlotReuseAfterUnbind) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<float>(64);
  const auto t1 = dev.bind_texture_2d(d, 8, 8, gs::AddressMode::kClamp);
  dev.unbind_texture(t1);
  const auto t2 = dev.bind_texture_2d(d, 8, 8, gs::AddressMode::kBorder);
  EXPECT_EQ(t1.index, t2.index);  // freed slot reused
  dev.unbind_texture(t2);
  dev.free(d);
}

TEST(Device, DoubleUnbindThrows) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<float>(64);
  const auto t = dev.bind_texture_2d(d, 8, 8, gs::AddressMode::kClamp);
  dev.unbind_texture(t);
  EXPECT_THROW(dev.unbind_texture(t), PreconditionError);
  dev.free(d);
}

TEST(Device, BindRejectsUndersizedSource) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto d = dev.malloc<float>(10);
  EXPECT_THROW((void)dev.bind_texture_2d(d, 8, 8, gs::AddressMode::kClamp),
               PreconditionError);
  dev.free(d);
}

TEST(Device, LaunchValidatesBlockLimits) {
  gs::Device dev(gs::DeviceSpec::test_small());  // 64 threads per block max
  gs::LaunchConfig config;
  config.grid = gs::Dim3(1);
  config.block = gs::Dim3(9, 9);  // 81 > 64
  EXPECT_THROW((void)dev.launch(config, noop_kernel), DeviceError);
}

TEST(Device, LaunchValidatesBlockDimensions) {
  gs::Device dev(gs::DeviceSpec::test_small());
  gs::LaunchConfig config;
  config.grid = gs::Dim3(1);
  config.block = gs::Dim3(1, 1, 64);  // z over max_block_dim_z=8
  EXPECT_THROW((void)dev.launch(config, noop_kernel), DeviceError);
}

TEST(Device, LaunchValidatesGridSize) {
  gs::Device dev(gs::DeviceSpec::test_small());  // max_grid_blocks = 4096
  gs::LaunchConfig config;
  config.grid = gs::Dim3(4097);
  config.block = gs::Dim3(1);
  EXPECT_THROW((void)dev.launch(config, noop_kernel), DeviceError);
}

TEST(Device, LaunchRejectsEmptyGeometry) {
  gs::Device dev(gs::DeviceSpec::test_small());
  gs::LaunchConfig config;
  config.grid = gs::Dim3(0);
  config.block = gs::Dim3(1);
  EXPECT_THROW((void)dev.launch(config, noop_kernel), PreconditionError);
}

TEST(Device, LastLaunchRequiresALaunch) {
  gs::Device dev(gs::DeviceSpec::test_small());
  EXPECT_THROW((void)dev.last_launch(), PreconditionError);
  gs::LaunchConfig config;
  config.grid = gs::Dim3(2);
  config.block = gs::Dim3(4);
  (void)dev.launch(config, noop_kernel);
  EXPECT_EQ(dev.launch_count(), 1u);
  EXPECT_EQ(dev.last_launch().counters.threads_launched, 8u);
}

TEST(Device, DeviceMemoryLimitEnforced) {
  gs::Device dev(gs::DeviceSpec::test_small());  // 1 MiB
  EXPECT_THROW((void)dev.malloc<float>(1 << 20), DeviceError);
  auto ok = dev.malloc<float>(1 << 10);
  dev.free(ok);
}

}  // namespace

// Appended coverage: pinned transfers and the additional device specs.
namespace {

TEST(Device, PinnedTransfersAreFaster) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::Device dev(spec);
  auto d = dev.malloc<float>(1 << 20);
  std::vector<float> host(1 << 20);

  dev.reset_transfer_stats();
  dev.memcpy_h2d(d, std::span<const float>(host));
  const double pageable = dev.transfer_stats().h2d_s;

  dev.set_pinned_transfers(true);
  EXPECT_TRUE(dev.pinned_transfers());
  dev.reset_transfer_stats();
  dev.memcpy_h2d(d, std::span<const float>(host));
  const double pinned = dev.transfer_stats().h2d_s;

  EXPECT_LT(pinned, pageable);
  const double expected =
      spec.pcie_latency_s +
      4.0 * (1 << 20) / (spec.pcie_pinned_bandwidth_gbps * 1e9);
  EXPECT_DOUBLE_EQ(pinned, expected);
  dev.free(d);
}

TEST(Device, TransferEstimateHonorsPinnedFlag) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  EXPECT_LT(gs::estimate_transfer_time(spec, 1 << 20, true),
            gs::estimate_transfer_time(spec, 1 << 20, false));
  // Latency-only floor identical either way.
  EXPECT_DOUBLE_EQ(gs::estimate_transfer_time(spec, 0, true),
                   gs::estimate_transfer_time(spec, 0, false));
}

TEST(DeviceSpecs, GenerationsAreOrderedByThroughput) {
  const gs::DeviceSpec gtx480 = gs::DeviceSpec::gtx480();
  const gs::DeviceSpec gtx580 = gs::DeviceSpec::gtx580();
  const gs::DeviceSpec k20 = gs::DeviceSpec::k20();
  EXPECT_LT(gtx480.peak_fp64_flops(), gtx580.peak_fp64_flops());
  EXPECT_LT(gtx580.peak_fp64_flops(), k20.peak_fp64_flops());
  // Published fp64 peaks: 168 / 198 / 1170 GFLOPS.
  EXPECT_NEAR(gtx480.peak_fp64_flops() / 1e9, 168.0, 1.0);
  EXPECT_NEAR(gtx580.peak_fp64_flops() / 1e9, 198.0, 1.0);
  EXPECT_NEAR(k20.peak_fp64_flops() / 1e9, 1170.0, 5.0);
}

TEST(DeviceSpecs, K20DeviceRunsKernels) {
  gs::Device dev(gs::DeviceSpec::k20());
  auto cell = dev.malloc<float>(1);
  dev.memset_zero(cell);
  auto kernel = [&cell](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.atomic_add(cell, 0, 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(4), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.atomic_ops, 256u);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), cell);
  EXPECT_EQ(host[0], 256.0f);
  dev.free(cell);
}

}  // namespace
