#include "imageio/image.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

using starsim::imageio::Image;
using starsim::imageio::ImageF;
using starsim::imageio::ImageU8;
using starsim::support::PreconditionError;

TEST(Image, ConstructsZeroInitialized) {
  ImageF image(4, 3);
  EXPECT_EQ(image.width(), 4);
  EXPECT_EQ(image.height(), 3);
  EXPECT_EQ(image.pixel_count(), 12u);
  for (float v : image.pixels()) EXPECT_EQ(v, 0.0f);
}

TEST(Image, ConstructsWithFillValue) {
  ImageU8 image(2, 2, 7);
  for (auto v : image.pixels()) EXPECT_EQ(v, 7);
}

TEST(Image, RejectsNonPositiveDimensions) {
  EXPECT_THROW(ImageF(0, 3), PreconditionError);
  EXPECT_THROW(ImageF(3, -1), PreconditionError);
}

TEST(Image, DefaultIsEmpty) {
  ImageF image;
  EXPECT_TRUE(image.empty());
  EXPECT_EQ(image.pixel_count(), 0u);
}

TEST(Image, RowMajorIndexing) {
  ImageF image(3, 2);
  image(2, 1) = 5.0f;
  EXPECT_EQ(image.index(2, 1), 5u);
  EXPECT_EQ(image.pixels()[5], 5.0f);
}

TEST(Image, ContainsMatchesBounds) {
  ImageF image(3, 2);
  EXPECT_TRUE(image.contains(0, 0));
  EXPECT_TRUE(image.contains(2, 1));
  EXPECT_FALSE(image.contains(3, 0));
  EXPECT_FALSE(image.contains(0, 2));
  EXPECT_FALSE(image.contains(-1, 0));
  EXPECT_FALSE(image.contains(0, -1));
}

TEST(Image, CheckedAccessThrowsOutOfBounds) {
  ImageF image(2, 2);
  EXPECT_THROW((void)image.at(2, 0), PreconditionError);
  EXPECT_THROW((void)image.at(0, -1), PreconditionError);
  EXPECT_NO_THROW((void)image.at(1, 1));
}

TEST(Image, FillOverwritesEverything) {
  ImageF image(4, 4, 1.0f);
  image.fill(2.5f);
  for (float v : image.pixels()) EXPECT_EQ(v, 2.5f);
}

TEST(Image, EqualityComparesPixels) {
  ImageF a(2, 2, 1.0f);
  ImageF b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b(1, 1) = 3.0f;
  EXPECT_NE(a, b);
}

TEST(Image, MaxAbsDifference) {
  ImageF a(2, 2);
  ImageF b(2, 2);
  b(0, 1) = -4.0f;
  b(1, 0) = 2.0f;
  EXPECT_DOUBLE_EQ(max_abs_difference(a, b), 4.0);
}

TEST(Image, MaxAbsDifferenceRejectsSizeMismatch) {
  ImageF a(2, 2);
  ImageF b(3, 2);
  EXPECT_THROW((void)max_abs_difference(a, b), PreconditionError);
}

TEST(Image, TotalFluxSumsPixels) {
  ImageF image(2, 3, 0.5f);
  EXPECT_DOUBLE_EQ(total_flux(image), 3.0);
}

}  // namespace
