#include "starsim/projection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "support/error.h"

namespace {

using starsim::CameraModel;
using starsim::CatalogStar;
using starsim::project_to_image;
using starsim::Quaternion;
using starsim::StarField;

CatalogStar star_at(double ra, double dec, double magnitude = 3.0) {
  CatalogStar star;
  star.right_ascension = ra;
  star.declination = dec;
  star.magnitude = magnitude;
  return star;
}

TEST(Projection, BoresightStarLandsAtPrincipalPoint) {
  // Identity attitude maps inertial +Z to the boresight; a star at the
  // celestial pole (+Z) lands at the image center.
  const std::vector<CatalogStar> catalog{
      star_at(0.0, std::numbers::pi / 2)};
  CameraModel camera;
  const StarField stars =
      project_to_image(catalog, Quaternion::identity(), camera);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_NEAR(stars[0].x, camera.center_x(), 1e-4);
  EXPECT_NEAR(stars[0].y, camera.center_y(), 1e-4);
  EXPECT_FLOAT_EQ(stars[0].magnitude, 3.0f);
}

TEST(Projection, OffAxisStarOffsetMatchesGnomonicFormula) {
  // A star 1 degree off boresight toward +X lands f*tan(1 deg) right of
  // center. Direction (sin a, 0, cos a) has ra=0, dec = pi/2 - a.
  const double angle = std::numbers::pi / 180.0;
  const std::vector<CatalogStar> catalog{
      star_at(0.0, std::numbers::pi / 2 - angle)};
  CameraModel camera;
  const StarField stars =
      project_to_image(catalog, Quaternion::identity(), camera);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_NEAR(stars[0].x - camera.center_x(),
              camera.focal_length_px * std::tan(angle), 1e-3);
  EXPECT_NEAR(stars[0].y, camera.center_y(), 1e-3);
}

TEST(Projection, StarsBehindCameraCulled) {
  const std::vector<CatalogStar> catalog{
      star_at(0.0, -std::numbers::pi / 2)};  // -Z: behind the boresight
  const StarField stars =
      project_to_image(catalog, Quaternion::identity(), CameraModel{});
  EXPECT_TRUE(stars.empty());
}

TEST(Projection, StarsOutsideFrameCulled) {
  // 45 degrees off axis: tan(45) * 2000 px is far outside a 1024 frame.
  const std::vector<CatalogStar> catalog{
      star_at(0.0, std::numbers::pi / 4)};
  const StarField stars =
      project_to_image(catalog, Quaternion::identity(), CameraModel{});
  EXPECT_TRUE(stars.empty());
}

TEST(Projection, MagnitudeLimitCullsFaintStars) {
  const std::vector<CatalogStar> catalog{
      star_at(0.0, std::numbers::pi / 2, 3.0),
      star_at(0.01, std::numbers::pi / 2 - 0.01, 8.5)};
  CameraModel camera;
  camera.magnitude_limit = 7.0;
  const StarField stars =
      project_to_image(catalog, Quaternion::identity(), camera);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_FLOAT_EQ(stars[0].magnitude, 3.0f);
}

TEST(Projection, AttitudeSlewMovesStars) {
  // Slewing the camera by half the small angle shifts the projected star
  // position accordingly.
  const double angle = 0.004;  // radians, ~2000*tan = 8 px
  const std::vector<CatalogStar> catalog{star_at(0.0, std::numbers::pi / 2)};
  CameraModel camera;
  const Quaternion slew = Quaternion::from_axis_angle({0, 1, 0}, angle);
  const StarField stars = project_to_image(catalog, slew, camera);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_NEAR(std::abs(stars[0].x - camera.center_x()),
              camera.focal_length_px * std::tan(angle), 0.05);
}

TEST(Projection, FrameMarginKeepsNearbyStars) {
  // A star just outside the frame is culled at margin 0 but kept with a
  // margin, modeling ROI flux leakage from off-frame stars.
  const double theta = std::atan2(520.0, 2000.0);  // ~8 px past the edge
  const std::vector<CatalogStar> catalog{
      star_at(0.0, std::numbers::pi / 2 - theta)};
  CameraModel tight;
  EXPECT_TRUE(project_to_image(catalog, Quaternion::identity(), tight).empty());
  CameraModel loose;
  loose.frame_margin_px = 16;
  EXPECT_EQ(project_to_image(catalog, Quaternion::identity(), loose).size(),
            1u);
}

TEST(Projection, HalfDiagonalFovMatchesGeometry) {
  CameraModel camera;
  camera.width = 1024;
  camera.height = 1024;
  camera.focal_length_px = 2000.0;
  const double expected = std::atan2(512.0 * std::numbers::sqrt2, 2000.0);
  EXPECT_NEAR(camera.half_diagonal_fov(), expected, 1e-12);
}

TEST(Projection, DenseCatalogYieldsPlausibleFovCount) {
  // The fraction of a uniform catalogue inside the FOV approximates the
  // FOV solid angle over 4 pi.
  const starsim::Catalog catalog = starsim::Catalog::synthesize(200000, 11);
  CameraModel camera;
  camera.magnitude_limit = 100.0;  // no magnitude culling
  const StarField stars =
      project_to_image(catalog.stars(), Quaternion::identity(), camera);
  // Solid angle of the ~28.7 x 28.7 deg frame: ~0.25 sr -> ~2% of sphere.
  const double fraction =
      static_cast<double>(stars.size()) / static_cast<double>(catalog.size());
  EXPECT_GT(fraction, 0.010);
  EXPECT_LT(fraction, 0.030);
}

TEST(Projection, ValidatesCamera) {
  CameraModel camera;
  camera.focal_length_px = 0.0;
  EXPECT_THROW((void)project_to_image({}, Quaternion::identity(), camera),
               starsim::support::PreconditionError);
}

}  // namespace
