#include "starsim/star_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "starsim/workload.h"
#include "support/error.h"

namespace {

using starsim::Catalog;
using starsim::read_catalog_file;
using starsim::read_star_file;
using starsim::Star;
using starsim::StarField;
using starsim::write_catalog_file;
using starsim::write_star_file;
using starsim::support::IoError;
using starsim::support::PreconditionError;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StarIo, StarFieldRoundTripsExactly) {
  starsim::WorkloadConfig workload;
  workload.star_count = 500;
  workload.integer_positions = false;
  const StarField original = generate_stars(workload);
  const std::string path = temp_path("stars_rt.stars");
  write_star_file(original, path);
  EXPECT_EQ(read_star_file(path), original);
  std::remove(path.c_str());
}

TEST(StarIo, WeightsRoundTrip) {
  StarField stars{Star{1.5f, 10.25f, 20.75f, 0.5f},
                  Star{14.0f, 0.0f, 1023.0f, 2.25f}};
  const std::string path = temp_path("weights.stars");
  write_star_file(stars, path);
  EXPECT_EQ(read_star_file(path), stars);
  std::remove(path.c_str());
}

TEST(StarIo, WeightDefaultsToOneWhenOmitted) {
  const std::string path = temp_path("three_field.stars");
  std::ofstream(path) << "starsim-stars v1\n3.5 100 200\n";
  const StarField stars = read_star_file(path);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_FLOAT_EQ(stars[0].magnitude, 3.5f);
  EXPECT_FLOAT_EQ(stars[0].weight, 1.0f);
  std::remove(path.c_str());
}

TEST(StarIo, CommentsAndBlankLinesIgnored) {
  const std::string path = temp_path("comments.stars");
  std::ofstream(path) << "starsim-stars v1\n"
                         "# header comment\n"
                         "\n"
                         "1 2 3\n"
                         "   # indented comment\n"
                         "4 5 6 0.5\n";
  EXPECT_EQ(read_star_file(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(StarIo, EmptyFieldRoundTrips) {
  const std::string path = temp_path("empty.stars");
  write_star_file(StarField{}, path);
  EXPECT_TRUE(read_star_file(path).empty());
  std::remove(path.c_str());
}

TEST(StarIo, CrlfHeaderTolerated) {
  const std::string path = temp_path("crlf.stars");
  std::ofstream(path, std::ios::binary) << "starsim-stars v1\r\n1 2 3\n";
  EXPECT_EQ(read_star_file(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(StarIo, RejectsWrongMagic) {
  const std::string path = temp_path("bad_magic.stars");
  std::ofstream(path) << "not-a-star-file\n1 2 3\n";
  EXPECT_THROW((void)read_star_file(path), IoError);
  std::remove(path.c_str());
}

TEST(StarIo, RejectsMalformedLines) {
  const std::string path = temp_path("bad_line.stars");
  std::ofstream(path) << "starsim-stars v1\n1 2\n";  // too few fields
  EXPECT_THROW((void)read_star_file(path), PreconditionError);
  std::ofstream(path) << "starsim-stars v1\n1 2 three\n";
  EXPECT_THROW((void)read_star_file(path), PreconditionError);
  std::ofstream(path) << "starsim-stars v1\n1 2 3 4 5\n";  // too many
  EXPECT_THROW((void)read_star_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(StarIo, RejectsMissingFile) {
  EXPECT_THROW((void)read_star_file(temp_path("nope.stars")), IoError);
}

TEST(StarIo, RejectsNonFiniteStarValues) {
  // operator>> happily parses "nan" and "inf"; one NaN magnitude would
  // silently poison every pixel its ROI touches. Reject at the boundary.
  const std::string path = temp_path("nonfinite.stars");
  for (const char* line : {"nan 2 3", "1 inf 3", "1 2 -inf", "1 2 3 nan"}) {
    std::ofstream(path) << "starsim-stars v1\n" << line << "\n";
    try {
      (void)read_star_file(path);
      FAIL() << "expected IoError for line: " << line;
    } catch (const IoError& error) {
      EXPECT_NE(std::string(error.what()).find("non-finite"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
    }
  }
  std::remove(path.c_str());
}

TEST(StarIo, RejectsNonFiniteCatalogValues) {
  const std::string path = temp_path("nonfinite.cat");
  for (const char* line : {"nan 0.5 3", "0.5 inf 3", "0.5 0.5 nan"}) {
    std::ofstream(path) << "starsim-catalog v1\n" << line << "\n";
    EXPECT_THROW((void)read_catalog_file(path), IoError)
        << "line: " << line;
  }
  std::remove(path.c_str());
}

TEST(StarIo, CatalogRoundTripsExactly) {
  const Catalog original = Catalog::synthesize(1000, 9);
  const std::string path = temp_path("cat_rt.cat");
  write_catalog_file(original, path);
  const Catalog loaded = read_catalog_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.stars()[i].right_ascension,
              original.stars()[i].right_ascension);
    EXPECT_EQ(loaded.stars()[i].declination,
              original.stars()[i].declination);
    EXPECT_EQ(loaded.stars()[i].magnitude, original.stars()[i].magnitude);
  }
  std::remove(path.c_str());
}

TEST(StarIo, StarAndCatalogFormatsDoNotCrossLoad) {
  const std::string path = temp_path("cross.stars");
  write_star_file(StarField{Star{1.0f, 2.0f, 3.0f, 1.0f}}, path);
  EXPECT_THROW((void)read_catalog_file(path), IoError);
  std::remove(path.c_str());
}

}  // namespace
