// Sanitizer tests: the defect corpus (each seeded defect is caught with the
// right kind and coordinates), clean-run assertions for every simulator
// under full instrumentation, and the off-mode equivalence contract.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/multi_gpu_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using gs::SanitizerFinding;
using gs::SanitizerFindingKind;
using gs::SanitizerMode;
using starsim::support::DeviceError;
using starsim::support::SanitizerError;

// Serialized blocks make coroutine interleavings (and therefore racecheck
// orderings) deterministic.
struct SanitizedDevice : gs::Device {
  explicit SanitizedDevice(SanitizerMode mode = SanitizerMode::kAll)
      : gs::Device(gs::DeviceSpec::test_small()) {
    set_parallel_blocks(false);
    set_sanitizer(mode);
  }
};

starsim::SceneConfig small_scene() {
  starsim::SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 8;
  return scene;
}

starsim::StarField small_field(std::size_t stars = 48) {
  starsim::WorkloadConfig workload;
  workload.star_count = stars;
  workload.image_width = 64;
  workload.image_height = 64;
  workload.integer_positions = false;
  return generate_stars(workload);
}

// --- Mode plumbing -----------------------------------------------------------

TEST(SanitizerMode_, ParseAndPrint) {
  EXPECT_EQ(gs::sanitizer_mode_from_string("off"), SanitizerMode::kOff);
  EXPECT_EQ(gs::sanitizer_mode_from_string("memcheck"),
            SanitizerMode::kMemcheck);
  EXPECT_EQ(gs::sanitizer_mode_from_string("race"), SanitizerMode::kRacecheck);
  EXPECT_EQ(gs::sanitizer_mode_from_string("synccheck"),
            SanitizerMode::kSynccheck);
  EXPECT_EQ(gs::sanitizer_mode_from_string("leak"), SanitizerMode::kLeakcheck);
  EXPECT_EQ(gs::sanitizer_mode_from_string("all"), SanitizerMode::kAll);
  EXPECT_THROW((void)gs::sanitizer_mode_from_string("everything"),
               starsim::support::PreconditionError);
  EXPECT_EQ(gs::to_string(SanitizerMode::kOff), "off");
  EXPECT_EQ(gs::to_string(SanitizerMode::kAll), "all");
}

// --- Defect corpus: memcheck -------------------------------------------------

// The paper's failure mode: an ROI whose footprint escapes its buffer. The
// defective store is suppressed (the frame stays intact), attributed to the
// exact block/thread, and the launch does not throw.
TEST(Memcheck, OobRoiWriteFlaggedWithCoordinates) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto buf = dev.malloc<float>(8);
  dev.memset_zero(buf);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.block_idx().x == 1 && ctx.thread_idx().x == 2) {
      ctx.store(buf, buf.size() + 5, 99.0f);  // the seeded defect
    } else {
      ctx.store(buf, ctx.block_linear() * 4 + ctx.thread_linear(), 1.0f);
    }
    co_return;
  };
  const gs::LaunchResult r =
      dev.launch({gs::Dim3(2), gs::Dim3(4)}, kernel);

  ASSERT_EQ(r.sanitizer.count(SanitizerFindingKind::kGlobalOutOfBounds), 1u);
  const SanitizerFinding& f = r.sanitizer.findings.front();
  EXPECT_EQ(f.kind, SanitizerFindingKind::kGlobalOutOfBounds);
  EXPECT_EQ(f.block.x, 1u);
  EXPECT_EQ(f.thread.x, 2u);
  EXPECT_EQ(f.allocation_id, buf.allocation_id());
  EXPECT_EQ(f.address, (buf.size() + 5) * sizeof(float));

  // The defective store was suppressed; every in-bounds store landed.
  std::vector<float> host(buf.size());
  dev.memcpy_d2h(std::span<float>(host), buf);
  std::size_t ones = 0;
  for (float v : host) {
    if (v == 1.0f) ++ones;
  }
  EXPECT_EQ(ones, 7u);  // 8 threads, one misbehaved
  dev.free(buf);
}

TEST(Memcheck, UseAfterFreeLoadFlaggedAndZero) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto freed = dev.malloc<float>(4);
  auto out = dev.malloc<float>(1);
  dev.memset_zero(freed);
  dev.free(freed);
  auto kernel = [freed, &out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(out, 0, ctx.load(freed, 0) + 7.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_EQ(r.sanitizer.count(SanitizerFindingKind::kUseAfterFree), 1u);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 7.0f);  // the suppressed load read as 0
  dev.free(out);
}

TEST(Memcheck, UninitializedReadReportedButProceeds) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto buf = dev.malloc<float>(4);  // never written, never memset
  auto out = dev.malloc<float>(1);
  auto kernel = [&buf, &out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(out, 0, ctx.load(buf, 2) + 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  ASSERT_EQ(r.sanitizer.count(SanitizerFindingKind::kUninitializedRead), 1u);
  EXPECT_EQ(r.sanitizer.findings.front().address, 2 * sizeof(float));
  // The read proceeded (device memory is deterministically zeroed).
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 1.0f);
  dev.free(buf);
  dev.free(out);
}

TEST(Memcheck, DoubleFreeIsTypedAndNeverRetryable) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto buf = dev.malloc<float>(16);
  auto stale = buf;  // free() resets its argument; the copy stays stale
  dev.free(buf);
  try {
    dev.free(stale);
    FAIL() << "double free must throw";
  } catch (const SanitizerError& error) {
    EXPECT_FALSE(error.retryable());  // ResilientExecutor must not retry it
    EXPECT_NE(std::string(error.what()).find("double free"),
              std::string::npos);
  }
}

// Slot recycling must not let a stale handle free the slot's new tenant.
TEST(Memcheck, StaleHandleFreeAfterRecyclingIsCaught) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto old_handle = dev.malloc<float>(8);
  auto stale = old_handle;
  dev.free(old_handle);
  auto tenant = dev.malloc<float>(8);  // recycles the slot
  EXPECT_THROW(dev.free(stale), SanitizerError);
  // The tenant survived the stale free and is still usable.
  dev.memset_zero(tenant);
  std::vector<float> host(8);
  dev.memcpy_d2h(std::span<float>(host), tenant);
  dev.free(tenant);
}

TEST(Memcheck, SharedOutOfBoundsSuppressedNotThrown) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto out = dev.malloc<float>(1);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(4);
    shared.set(0, 5.0f);
    ctx.store(out, 0, shared.get(9));  // beyond extent: suppressed, reads 0
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_EQ(r.sanitizer.count(SanitizerFindingKind::kSharedOutOfBounds), 1u);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 0.0f);
  dev.free(out);
}

TEST(Memcheck, StaleTextureFetchFlagged) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto data = dev.malloc<float>(16);
  dev.memset_zero(data);
  const auto tex = dev.bind_texture_2d(data, 4, 4, gs::AddressMode::kClamp);
  dev.unbind_texture(tex);
  auto out = dev.malloc<float>(1);
  auto kernel = [tex, &out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(out, 0, ctx.tex2d(tex, 1, 1) + 3.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_EQ(r.sanitizer.count(SanitizerFindingKind::kInvalidTextureFetch),
            1u);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 3.0f);  // suppressed fetch returned 0
  dev.free(data);
  dev.free(out);
}

TEST(Memcheck, HostCopyOfUninitializedBufferReported) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto buf = dev.malloc<float>(4);  // no memset, no stores
  std::vector<float> host(4);
  dev.memcpy_d2h(std::span<float>(host), buf);
  EXPECT_EQ(
      dev.sanitizer_report().count(SanitizerFindingKind::kUninitializedRead),
      1u);
  dev.free(buf);
}

// --- Defect corpus: racecheck ------------------------------------------------

// Fig. 6's shared-memory pattern with the barrier removed: the write and
// the sibling reads share epoch 0.
TEST(Racecheck, MissingBarrierFlagged) {
  SanitizedDevice dev(SanitizerMode::kRacecheck);
  auto out = dev.malloc<float>(8);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 42.0f);
    // defect: no co_await ctx.syncthreads() here
    ctx.store(out, ctx.thread_linear(), shared.get(0));
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(8)}, kernel);
  // One finding per shared word, not one per racing pair.
  ASSERT_EQ(r.sanitizer.count(SanitizerFindingKind::kSharedRace), 1u);
  EXPECT_EQ(r.sanitizer.findings.front().epoch, 0u);
  dev.free(out);
}

// A non-atomic shared accumulate (read-modify-write from every thread) is
// the racing-accumulate defect; atomic_add is the correct tool.
TEST(Racecheck, RacingNonAtomicAccumulateFlagged) {
  SanitizedDevice dev(SanitizerMode::kRacecheck);
  auto out = dev.malloc<float>(1);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    shared.set(0, shared.get(0) + 1.0f);  // defect: unsynchronized RMW
    co_await ctx.syncthreads();
    if (ctx.thread_linear() == 0) ctx.store(out, 0, shared.get(0));
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(4)}, kernel);
  EXPECT_GE(r.sanitizer.count(SanitizerFindingKind::kSharedRace), 1u);
  dev.free(out);
}

TEST(Racecheck, BarrierSeparatedAccessesAreClean) {
  SanitizedDevice dev(SanitizerMode::kRacecheck);
  auto out = dev.malloc<float>(8);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 42.0f);
    co_await ctx.syncthreads();
    ctx.store(out, ctx.thread_linear(), shared.get(0));
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(8)}, kernel);
  EXPECT_TRUE(r.sanitizer.clean()) << r.sanitizer.summary();
  std::vector<float> host(8);
  dev.memcpy_d2h(std::span<float>(host), out);
  for (float v : host) EXPECT_EQ(v, 42.0f);
  dev.free(out);
}

// --- Defect corpus: synccheck ------------------------------------------------

// Off mode throws on a divergent barrier; under synccheck the launch
// completes, reports the divergence, and abandons the broken block.
TEST(Synccheck, DivergentBarrierReportedNotThrown) {
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.thread_linear() == 0) co_return;  // defect: thread 0 skips
    co_await ctx.syncthreads();
  };
  {
    SanitizedDevice off(SanitizerMode::kOff);
    EXPECT_THROW((void)off.launch({gs::Dim3(1), gs::Dim3(4)}, kernel),
                 DeviceError);
  }
  SanitizedDevice dev(SanitizerMode::kSynccheck);
  gs::LaunchResult r;
  ASSERT_NO_THROW(r = dev.launch({gs::Dim3(1), gs::Dim3(4)}, kernel));
  ASSERT_EQ(r.sanitizer.count(SanitizerFindingKind::kBarrierDivergence), 1u);
  EXPECT_EQ(r.sanitizer.findings.front().epoch, 0u);
}

// Divergence in one block must not poison the others' results.
TEST(Synccheck, HealthyBlocksSurviveASiblingsDivergence) {
  SanitizedDevice dev(SanitizerMode::kSynccheck);
  auto out = dev.malloc<float>(4);
  dev.memset_zero(out);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.block_idx().x == 1 && ctx.thread_linear() == 0) co_return;
    co_await ctx.syncthreads();
    if (ctx.thread_linear() == 0) {
      ctx.store(out, ctx.block_linear(), 1.0f);
    }
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(4), gs::Dim3(2)}, kernel);
  EXPECT_EQ(r.sanitizer.count(SanitizerFindingKind::kBarrierDivergence), 1u);
  EXPECT_EQ(r.sanitizer.findings.front().block.x, 1u);
  std::vector<float> host(4);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 1.0f);
  EXPECT_EQ(host[1], 0.0f);  // the abandoned block wrote nothing
  EXPECT_EQ(host[2], 1.0f);
  EXPECT_EQ(host[3], 1.0f);
  dev.free(out);
}

// --- Defect corpus: leakcheck ------------------------------------------------

// The leaked-LUT-buffer defect: a lookup table uploaded and bound but never
// released shows up as both a leaked allocation and a leaked texture.
TEST(Leakcheck, LeakedLutBufferAndBoundTextureReported) {
  SanitizedDevice dev(SanitizerMode::kLeakcheck);
  auto lut = dev.malloc<float>(64);
  dev.memset_zero(lut);
  const auto tex = dev.bind_texture_2d(lut, 8, 8, gs::AddressMode::kClamp);

  const gs::SanitizerReport leaks = dev.leak_report();
  EXPECT_EQ(leaks.count(SanitizerFindingKind::kLeakedAllocation), 1u);
  ASSERT_EQ(leaks.count(SanitizerFindingKind::kLeakedTexture), 1u);
  bool saw_allocation = false;
  for (const SanitizerFinding& f : leaks.findings) {
    if (f.kind == SanitizerFindingKind::kLeakedAllocation) {
      saw_allocation = true;
      EXPECT_EQ(f.allocation_id, lut.allocation_id());
      EXPECT_EQ(f.address, 64 * sizeof(float));  // leaked bytes
    }
  }
  EXPECT_TRUE(saw_allocation);

  // Releasing everything clears the report (and the teardown warning).
  dev.unbind_texture(tex);
  dev.free(lut);
  EXPECT_TRUE(dev.leak_report().clean());
}

// --- Per-launch override and off-mode contract -------------------------------

TEST(Sanitizer, PerLaunchOverrideOnAnUninstrumentedDevice) {
  SanitizedDevice dev(SanitizerMode::kOff);
  auto buf = dev.malloc<float>(4);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(buf, 17, 1.0f);  // out of bounds
    co_return;
  };
  // Plain launch on an off device keeps the strict throwing contract.
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel),
               starsim::support::PreconditionError);
  // The sanitized override reports instead, and the device accumulates it.
  const gs::LaunchResult r = dev.launch_sanitized(
      {gs::Dim3(1), gs::Dim3(1)}, kernel, SanitizerMode::kMemcheck);
  EXPECT_EQ(r.sanitizer.count(SanitizerFindingKind::kGlobalOutOfBounds), 1u);
  EXPECT_EQ(dev.sanitizer_report().total_findings, 1u);
  dev.free(buf);
}

TEST(Sanitizer, ReportCapKeepsCounting) {
  SanitizedDevice dev(SanitizerMode::kMemcheck);
  auto buf = dev.malloc<float>(1);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(buf, 2 + ctx.thread_linear(), 1.0f);  // every store OOB
    co_return;
  };
  const gs::LaunchResult r =
      dev.launch({gs::Dim3(8), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.sanitizer.total_findings, 512u);
  EXPECT_EQ(r.sanitizer.findings.size(),
            gs::SanitizerReport::kMaxFindings);
  dev.free(buf);
}

// --- Clean runs: the shipped simulator stack ---------------------------------

// Every device-backed simulator must run clean under full instrumentation —
// including leakcheck after the simulator released its resources.
template <typename MakeSimulator>
void expect_clean_run(MakeSimulator make, bool parallel_blocks = false) {
  gs::Device device(gs::DeviceSpec::gtx480());
  device.set_parallel_blocks(parallel_blocks);
  device.set_sanitizer(SanitizerMode::kAll);
  {
    auto simulator = make(device);
    const auto result = simulator->simulate(small_scene(), small_field());
    EXPECT_GT(result.image.pixels().size(), 0u);
  }
  EXPECT_TRUE(device.sanitizer_report().clean())
      << device.sanitizer_report().summary();
  EXPECT_TRUE(device.leak_report().clean()) << device.leak_report().summary();
}

TEST(CleanRuns, ParallelSimulatorUnderFullSanitizer) {
  expect_clean_run([](gs::Device& dev) {
    return std::make_unique<starsim::ParallelSimulator>(dev);
  });
}

TEST(CleanRuns, AdaptiveSimulatorUnderFullSanitizer) {
  expect_clean_run([](gs::Device& dev) {
    return std::make_unique<starsim::AdaptiveSimulator>(dev);
  });
}

TEST(CleanRuns, PixelCentricSimulatorUnderFullSanitizer) {
  expect_clean_run([](gs::Device& dev) {
    return std::make_unique<starsim::PixelCentricSimulator>(dev);
  });
}

// OpenMP-offload-style execution: blocks dispatched concurrently, findings
// (there must be none) collected under the launch mutex.
TEST(CleanRuns, ParallelBlockExecutionUnderFullSanitizer) {
  expect_clean_run(
      [](gs::Device& dev) {
        return std::make_unique<starsim::ParallelSimulator>(dev);
      },
      /*parallel_blocks=*/true);
}

TEST(CleanRuns, MultiGpuSimulatorUnderFullSanitizer) {
  starsim::MultiGpuSimulator sim(2);
  for (int i = 0; i < 2; ++i) {
    sim.device(i).set_sanitizer(SanitizerMode::kAll);
  }
  const auto result = sim.simulate(small_scene(), small_field());
  EXPECT_GT(result.image.pixels().size(), 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(sim.device(i).sanitizer_report().clean())
        << sim.device(i).sanitizer_report().summary();
  }
}

// The instrumented render must not change a single bit of the frame.
TEST(CleanRuns, SanitizedFrameIsBitIdenticalToProduction) {
  const auto scene = small_scene();
  const auto stars = small_field();
  gs::Device plain_dev(gs::DeviceSpec::gtx480());
  gs::Device sanitized_dev(gs::DeviceSpec::gtx480());
  sanitized_dev.set_sanitizer(SanitizerMode::kAll);
  starsim::ParallelSimulator plain(plain_dev);
  starsim::ParallelSimulator sanitized(sanitized_dev);
  const auto a = plain.simulate(scene, stars).image;
  const auto b = sanitized.simulate(scene, stars).image;
  ASSERT_EQ(a.pixels().size(), b.pixels().size());
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    ASSERT_EQ(a.pixels()[i], b.pixels()[i]) << "pixel " << i;
  }
  EXPECT_TRUE(sanitized_dev.sanitizer_report().clean());
}

}  // namespace
