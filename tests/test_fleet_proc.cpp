// Out-of-process fleet chaos: real starsim_shardd processes behind Unix
// sockets, killed and wedged with real signals while the router keeps
// serving.
//
// The contract is the same one the loopback chaos suite holds the router
// to — every admitted future resolves, completed frames are bit-identical
// to direct renders, the supervision ladder (detect -> respawn -> probe ->
// reinstate) recovers without a restart — because the Transport interface
// makes the two fleets indistinguishable above the byte boundary.
// STARSIM_SHARDD_PATH is compiled in by tests/CMakeLists.txt.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace fleet = starsim::fleet;
namespace support = starsim::support;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::ImageF;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;

SceneConfig small_scene(double sigma = 1.0) {
  SceneConfig scene;
  scene.image_width = 48;
  scene.image_height = 48;
  scene.roi_side = 8;
  scene.psf_sigma = sigma;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 48.0f * static_cast<float>(rng.uniform());
    star.y = 48.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest pinned_request(const SceneConfig& scene,
                             const StarField& stars) {
  RenderRequest request;
  request.scene = scene;
  request.stars = stars;
  request.simulator = SimulatorKind::kParallel;
  return request;
}

// Routing keys hash the SceneConfig, so chaos traffic varies psf_sigma per
// seed to spread requests across the ring (stars alone don't move keys).
SceneConfig spread_scene(std::uint64_t seed) {
  return small_scene(0.8 + 0.01 * static_cast<double>(seed % 64));
}

ImageF direct_render(const SceneConfig& scene, const StarField& stars) {
  starsim::gpusim::Device device(starsim::gpusim::DeviceSpec::gtx480());
  return starsim::ParallelSimulator(device).simulate(scene, stars).image;
}

/// Per-test socket directory under /tmp (sockaddr_un paths must be short).
std::string socket_dir(const char* tag) {
  const std::string dir =
      "/tmp/starsim_" + std::string(tag) + "_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0700);
  return dir;
}

fleet::FleetOptions proc_options(int shards, const char* tag) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.replicas = 2;
  options.router_threads = 2;
  options.probe_after_ms = 1.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.process_shards = true;
  options.shardd_path = STARSIM_SHARDD_PATH;
  options.socket_dir = socket_dir(tag);
  options.transport.heartbeat_period_s = 0.05;
  return options;
}

/// Wait for the ladder to respawn at least `respawns` shards, then drive
/// traffic until `index` climbs back to kHealthy (probes need live
/// templates) or the deadline passes. The respawn wait matters: right
/// after a crash the state is still kHealthy until detection fires, so
/// polling the state alone would declare victory instantly.
void drive_until_healthy(fleet::ShardRouter& router, int index,
                         double timeout_s, std::uint64_t respawns = 1) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (router.stats().respawns_succeeded < respawns &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::uint64_t nonce = 0;
  while (router.shard_state(index) != fleet::ShardState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    const std::uint64_t seed = nonce++;
    try {
      (void)router.render(pinned_request(spread_scene(seed),
                                         random_stars(3000 + seed, 10)));
    } catch (const support::Error&) {
      // Failovers and sheds during recovery are fine; hangs are not.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// --- Steady state: process shards are just shards --------------------------

TEST(FleetProc, ProcessShardsServeBitIdenticalFramesAndHeartbeat) {
  fleet::FleetOptions options = proc_options(2, "steady");
  fleet::ShardRouter router(options);

  for (std::uint64_t i = 0; i < 4; ++i) {
    const SceneConfig scene = spread_scene(i);
    const StarField stars = random_stars(100 + i, 15);
    const RenderResponse response =
        router.render(pinned_request(scene, stars));
    ASSERT_NE(response.result, nullptr);
    EXPECT_EQ(max_abs_difference(response.result->image,
                                 direct_render(scene, stars)),
              0.0)
        << "frame " << i << " crossed the socket wrong";
  }

  // Heartbeats flow, and their acks carry real queue capacities.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GT(router.transport(0).queue_capacity(), 0u);
  EXPECT_LT(router.transport(0).heartbeat_age_ms(), 5000.0);

  // The fleet exposition merges the process shards' serve families (the
  // stats frames crossed the socket) and the new proc/heartbeat families.
  const std::string exposition = router.scrape_metrics();
  EXPECT_NE(exposition.find("starsim_fleet_heartbeats_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("starsim_fleet_proc_respawns_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("instance=\"shard-0\""), std::string::npos);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_GT(stats.heartbeats_sent, 0u);
}

// --- SIGKILL mid-batch: the acceptance scenario ----------------------------

TEST(FleetProc, SigkillMidBatchLeavesNoStuckFuturesAndFailsOver) {
  fleet::FleetOptions options = proc_options(3, "sigkill");
  fleet::ShardRouter router(options);

  std::vector<SceneConfig> scenes;
  std::vector<StarField> fields;
  std::vector<std::future<RenderResponse>> futures;
  for (std::uint64_t i = 0; i < 10; ++i) {
    scenes.push_back(spread_scene(i));
    fields.push_back(random_stars(700 + i, 12));
    futures.push_back(
        router.submit(pinned_request(scenes.back(), fields.back())));
    if (i == 3) {
      // SIGKILL one shard while its batch is in flight. kill_shard is
      // terminal: no respawn, traffic must fail over to the replicas.
      router.kill_shard(1);
    }
  }

  std::uint64_t frames = 0;
  std::uint64_t typed_errors = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "future " << i << " stuck after SIGKILL";
    try {
      const RenderResponse response = futures[i].get();
      ASSERT_NE(response.result, nullptr);
      EXPECT_EQ(max_abs_difference(response.result->image,
                                   direct_render(scenes[i], fields[i])),
                0.0)
          << "post-kill frame " << i << " not bit-identical";
      ++frames;
    } catch (const support::Error&) {
      ++typed_errors;  // typed resolution is a clean outcome; a hang is not
    }
  }

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u) << "stuck futures after quiesce";
  EXPECT_EQ(frames + typed_errors, 10u);
  EXPECT_GE(frames, 5u) << "failover did not carry the load";
  EXPECT_EQ(router.shard_state(1), fleet::ShardState::kDown);
}

// --- The supervision ladder: crash -> respawn -> probe -> reinstate --------

TEST(FleetProc, SupervisorRespawnsCrashedProcessAndProbeReinstates) {
  fleet::FleetOptions options = proc_options(2, "respawn");
  options.supervise = true;
  options.supervision.poll_ms = 10.0;
  options.supervision.respawn_backoff_ms = 10.0;
  fleet::ShardRouter router(options);

  // Warm traffic, then SIGKILL shard 1's process behind the router's back.
  const StarField stars = random_stars(42, 15);
  (void)router.render(pinned_request(small_scene(), stars));
  router.crash_shard(1);

  drive_until_healthy(router, 1, /*timeout_s=*/60.0);
  EXPECT_EQ(router.shard_state(1), fleet::ShardState::kHealthy)
      << "ladder never reinstated the respawned shard";

  // The recovered shard serves bit-identical frames.
  const RenderResponse after =
      router.render(pinned_request(small_scene(), stars));
  ASSERT_NE(after.result, nullptr);
  EXPECT_EQ(max_abs_difference(after.result->image,
                               direct_render(small_scene(), stars)),
            0.0);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_GE(stats.crashes_detected, 1u);
  EXPECT_GE(stats.respawns_attempted, 1u);
  EXPECT_GE(stats.respawns_succeeded, 1u);
  EXPECT_GT(stats.last_respawn_s, 0.0);
  EXPECT_GE(stats.reinstates, 1u);
  bool saw_respawned_snapshot = false;
  for (const fleet::ShardSnapshot& shard : stats.shards) {
    if (shard.index == 1) saw_respawned_snapshot = shard.respawns >= 1;
  }
  EXPECT_TRUE(saw_respawned_snapshot);
}

TEST(FleetProc, RespawnBudgetExhaustionMarksShardDown) {
  fleet::FleetOptions options = proc_options(2, "budget");
  options.supervise = true;
  options.supervision.poll_ms = 10.0;
  options.supervision.respawn_budget = 0;  // straight to exhausted
  fleet::ShardRouter router(options);

  router.crash_shard(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (router.shard_state(0) != fleet::ShardState::kDown &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kDown);

  // The fleet keeps serving on the survivor.
  const StarField stars = random_stars(55, 12);
  const RenderResponse response =
      router.render(pinned_request(small_scene(), stars));
  ASSERT_NE(response.result, nullptr);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_GE(stats.respawns_exhausted, 1u);
  EXPECT_EQ(stats.respawns_succeeded, 0u);
}

// --- SIGSTOP: the hang the heartbeat ladder exists for ---------------------

TEST(FleetProc, SigstopHangIsDetectedTimedOutAndRecovered) {
  fleet::FleetOptions options = proc_options(2, "hang");
  options.supervise = true;
  options.supervision.poll_ms = 10.0;
  options.supervision.hang_after_ms = 800.0;
  options.supervision.respawn_backoff_ms = 10.0;
  options.transport.io_timeout_s = 0.5;  // wedged reads miss this budget
  fleet::ShardRouter router(options);

  (void)router.render(pinned_request(small_scene(), random_stars(1, 10)));
  router.wedge_shard(0);  // SIGSTOP: socket open, nobody home

  // Requests racing the hang detector burn their I/O budget on the wedged
  // shard and fail over; the budget bounds each one to ~io_timeout_s.
  std::vector<std::future<RenderResponse>> futures;
  std::vector<StarField> fields;
  for (std::uint64_t i = 0; i < 6; ++i) {
    fields.push_back(random_stars(900 + i, 10));
    futures.push_back(
        router.submit(pinned_request(spread_scene(i), fields.back())));
  }
  std::uint64_t frames = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "a wedged shard blocked a router future";
    try {
      const RenderResponse response = future.get();
      ASSERT_NE(response.result, nullptr);
      ++frames;
    } catch (const support::Error&) {
    }
  }
  EXPECT_GE(frames, 1u);

  drive_until_healthy(router, 0, /*timeout_s=*/60.0);
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kHealthy)
      << "hang ladder never recovered the shard";

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  // SIGSTOP is detected as a hang (heartbeat age) or, if a kill raced a
  // waitpid, as a crash — either way the ladder ran and respawned.
  EXPECT_GE(stats.hangs_detected + stats.crashes_detected, 1u);
  EXPECT_GE(stats.respawns_succeeded, 1u);
  EXPECT_GE(stats.transport_timeouts + stats.heartbeats_missed, 1u)
      << "nothing observed the wedge";
}

}  // namespace
