// starsim::sched — tuner determinism, the cost model's exactness contract
// against SimulatorSelector, the tiled-kernel counter prediction, and the
// Table III crossover regression the tuned policy must reproduce.
#include "sched/tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "gpusim/device.h"
#include "sched/cost.h"
#include "sched/schedule.h"
#include "starsim/parallel_simulator.h"
#include "starsim/selector.h"
#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
namespace sched = starsim::sched;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::SimulatorSelector;
using starsim::StarField;

SceneConfig paper_scene(int roi_side) {
  SceneConfig scene;
  scene.image_width = 1024;
  scene.image_height = 1024;
  scene.roi_side = roi_side;
  return scene;
}

sched::Workload workload_of(const SceneConfig& scene, std::size_t stars,
                            std::size_t batch_hint = 1) {
  sched::Workload workload;
  workload.scene = scene;
  workload.star_count = stars;
  workload.batch_hint = batch_hint;
  return workload;
}

TEST(SchedTuner, DeterministicAcrossInstances) {
  // Two independently constructed tuners with the same seed must agree on
  // the winning schedule and its modeled cost bit for bit — the property
  // that lets the schedule cache persist across processes.
  const sched::Tuner a;
  const sched::Tuner b;
  for (std::size_t stars : {8u, 512u, 8192u, 65536u}) {
    const sched::Workload workload = workload_of(paper_scene(10), stars);
    const sched::TuningOutcome first = a.tune(workload);
    const sched::TuningOutcome second = b.tune(workload);
    EXPECT_EQ(first.schedule.to_string(), second.schedule.to_string());
    EXPECT_EQ(first.cost.application_s, second.cost.application_s);
    EXPECT_EQ(first.candidates_evaluated, second.candidates_evaluated);
  }
}

TEST(SchedTuner, FixedBaselinesMatchSelectorPrediction) {
  // The exactness contract (sched/cost.h): the fixed untiled-parallel and
  // floor-LUT adaptive schedules score through the same arithmetic as the
  // legacy Table III advisor, so the tuner's baselines are the advisor's
  // own numbers — not a parallel reimplementation that could drift.
  const SimulatorSelector selector;
  const sched::Tuner tuner;
  for (std::size_t stars : {64u, 8192u, 131072u}) {
    const SceneConfig scene = paper_scene(10);
    const starsim::Prediction prediction = selector.predict(scene, stars);
    const sched::TuningOutcome outcome = tuner.tune(workload_of(scene, stars));
    EXPECT_DOUBLE_EQ(outcome.fixed_parallel_s,
                     prediction.parallel.application_s());
    EXPECT_DOUBLE_EQ(outcome.fixed_adaptive_s,
                     prediction.adaptive.application_s());
    EXPECT_DOUBLE_EQ(outcome.sequential_s, prediction.sequential_s);
  }
}

TEST(SchedTuner, TunedNeverWorseThanFixed) {
  // Both fixed schedules are seeds, so the winner can never score above
  // them. Sweep both paper axes.
  const sched::Tuner tuner;
  for (std::size_t stars : starsim::test1_star_counts()) {
    const sched::TuningOutcome outcome =
        tuner.tune(workload_of(paper_scene(10), stars));
    EXPECT_LE(outcome.cost.application_s, outcome.best_fixed_s())
        << stars << " stars";
  }
  for (int roi : starsim::test2_roi_sides()) {
    const sched::TuningOutcome outcome =
        tuner.tune(workload_of(paper_scene(roi), starsim::kTest2StarCount));
    EXPECT_LE(outcome.cost.application_s, outcome.best_fixed_s())
        << "ROI " << roi;
  }
}

TEST(SchedTuner, Table3StarCrossoverPreserved) {
  // Table III: at ROI 10 the adaptive simulator takes over at 2^13 stars.
  // The tuned policy must cross between parallel and adaptive within one
  // power of two of that (2^12..2^14) — the cost model is the selector's,
  // so a drift here is a schedule-space bug, not a calibration change.
  const sched::Tuner tuner;
  std::size_t crossover = 0;
  for (std::size_t stars = 32; stars <= (1u << 17); stars *= 2) {
    const sched::TuningOutcome outcome =
        tuner.tune(workload_of(paper_scene(10), stars));
    if (outcome.schedule.simulator == SimulatorKind::kAdaptive) {
      crossover = stars;
      break;
    }
  }
  EXPECT_GE(crossover, std::size_t{1} << 12);
  EXPECT_LE(crossover, std::size_t{1} << 14);
}

TEST(SchedTuner, Table3RoiCrossoverPreserved) {
  // Table III's other axis: at 8192 stars the adaptive simulator takes over
  // at ROI side 10; on the paper's even-stepped test2 grid the tuned policy
  // must cross within [8, 12]. (Odd sides are excluded deliberately: a
  // 5x5- or 7x7-thread block leaves a partial warp, and the legacy advisor
  // itself flips to adaptive there — the tuner reproduces that wobble.)
  const sched::Tuner tuner;
  int crossover = 0;
  for (int roi = 2; roi <= 32; roi += 2) {
    const sched::TuningOutcome outcome =
        tuner.tune(workload_of(paper_scene(roi), starsim::kTest2StarCount));
    if (outcome.schedule.simulator == SimulatorKind::kAdaptive) {
      crossover = roi;
      break;
    }
  }
  EXPECT_GE(crossover, 8);
  EXPECT_LE(crossover, 12);
}

TEST(SchedTuner, TiledCountersMatchRealLaunch) {
  // The tiled star-centric cost prediction mirrors tiled_parallel_kernel
  // step for step. With interior stars and a tile side dividing the ROI
  // exactly (the only tilings the space proposes), every counter must match
  // a real simulated launch — same check the selector gets for the untiled
  // kernel in test_starsim_parallel.
  const SceneConfig scene = [] {
    SceneConfig s;
    s.image_width = 256;
    s.image_height = 256;
    s.roi_side = 10;
    return s;
  }();
  starsim::WorkloadConfig config;
  config.star_count = 150;
  config.image_width = 256;
  config.image_height = 256;
  config.border_margin = 8;  // keep every ROI interior
  const StarField stars = starsim::generate_stars(config);

  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelOptions options;
  options.allow_tiling = true;
  options.tile_side = 5;  // divides ROI 10: no partial tiles
  starsim::ParallelSimulator par(device, options);
  const starsim::SimulationResult r = par.simulate(scene, stars);

  const sched::CostModel model;
  const gs::KernelCounters predicted =
      model.predict_tiled_parallel_counters(scene, stars.size(), 5);

  EXPECT_EQ(r.timing.counters.blocks_launched, predicted.blocks_launched);
  EXPECT_EQ(r.timing.counters.threads_launched, predicted.threads_launched);
  EXPECT_EQ(r.timing.counters.warps_launched, predicted.warps_launched);
  EXPECT_EQ(r.timing.counters.flops, predicted.flops);
  EXPECT_EQ(r.timing.counters.global_reads, predicted.global_reads);
  EXPECT_EQ(r.timing.counters.global_bytes_read, predicted.global_bytes_read);
  EXPECT_EQ(r.timing.counters.global_bytes_written,
            predicted.global_bytes_written);
  EXPECT_EQ(r.timing.counters.global_transactions,
            predicted.global_transactions);
  EXPECT_EQ(r.timing.counters.shared_reads, predicted.shared_reads);
  EXPECT_EQ(r.timing.counters.shared_writes, predicted.shared_writes);
  EXPECT_EQ(r.timing.counters.atomic_ops, predicted.atomic_ops);
  EXPECT_EQ(r.timing.counters.barriers, predicted.barriers);
  EXPECT_EQ(r.timing.counters.branch_sites_evaluated,
            predicted.branch_sites_evaluated);
  EXPECT_EQ(r.timing.counters.divergent_warp_branches, 0u);
}

TEST(SchedTuner, BatchHintAmortizesAdaptiveSetup) {
  // The adaptive path's per-scene setup (LUT build + upload + bind) divides
  // by the batch hint, so a batched workload must never score the adaptive
  // schedule worse than the same workload unbatched.
  const sched::Tuner tuner;
  const SceneConfig scene = paper_scene(10);
  const sched::TuningOutcome single =
      tuner.tune(workload_of(scene, 1u << 14, 1));
  const sched::TuningOutcome batched =
      tuner.tune(workload_of(scene, 1u << 14, 8));
  EXPECT_LT(batched.fixed_adaptive_s, single.fixed_adaptive_s);
  EXPECT_LE(batched.cost.application_s, single.cost.application_s);
}

TEST(SchedTuner, RejectsInvalidWorkloads) {
  const sched::Tuner tuner;
  EXPECT_THROW((void)tuner.tune(workload_of(paper_scene(10), 0)),
               starsim::support::Error);
  SceneConfig invalid = paper_scene(10);
  invalid.roi_side = 0;
  EXPECT_THROW((void)tuner.tune(workload_of(invalid, 64)),
               starsim::support::Error);
}

TEST(SchedTuner, CostModelRejectsUnschedulableKinds) {
  const sched::CostModel model;
  sched::Schedule multi;
  multi.simulator = SimulatorKind::kMultiGpu;
  EXPECT_THROW((void)model.score(paper_scene(10), 64, multi),
               starsim::support::PreconditionError);
}

}  // namespace
