#include "imageio/tonemap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.h"

namespace {

namespace io = starsim::imageio;
using starsim::support::PreconditionError;

TEST(Tonemap, LinearMapsFullScaleTo255) {
  io::ImageF flux(2, 1);
  flux(0, 0) = 0.0f;
  flux(1, 0) = 2.0f;
  io::TonemapOptions opts;
  opts.full_scale = 2.0f;
  const io::ImageU8 out = io::tonemap_u8(flux, opts);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(1, 0), 255);
}

TEST(Tonemap, MidScaleIsProportional) {
  io::ImageF flux(1, 1);
  flux(0, 0) = 0.5f;
  io::TonemapOptions opts;
  opts.full_scale = 1.0f;
  EXPECT_EQ(io::tonemap_u8(flux, opts)(0, 0), 128);  // round(0.5*255)
}

TEST(Tonemap, ClipsAboveFullScale) {
  io::ImageF flux(1, 1);
  flux(0, 0) = 100.0f;
  io::TonemapOptions opts;
  opts.full_scale = 1.0f;
  EXPECT_EQ(io::tonemap_u8(flux, opts)(0, 0), 255);
}

TEST(Tonemap, ClampsNegativeToZero) {
  io::ImageF flux(1, 1);
  flux(0, 0) = -5.0f;
  EXPECT_EQ(io::tonemap_u8(flux)(0, 0), 0);
}

TEST(Tonemap, GammaBrightensMidtones) {
  io::ImageF flux(1, 1);
  flux(0, 0) = 0.25f;
  io::TonemapOptions linear;
  io::TonemapOptions gamma;
  gamma.gamma = 2.2f;
  EXPECT_GT(io::tonemap_u8(flux, gamma)(0, 0),
            io::tonemap_u8(flux, linear)(0, 0));
  // gamma 2.2 on 0.25: 0.25^(1/2.2) ~ 0.533.
  EXPECT_EQ(io::tonemap_u8(flux, gamma)(0, 0),
            static_cast<int>(std::lround(std::pow(0.25, 1.0 / 2.2) * 255)));
}

TEST(Tonemap, U16UsesFullRange) {
  io::ImageF flux(2, 1);
  flux(0, 0) = 1.0f;
  flux(1, 0) = 0.5f;
  const io::ImageU16 out = io::tonemap_u16(flux);
  EXPECT_EQ(out(0, 0), 65535);
  EXPECT_EQ(out(1, 0), 32768);
}

TEST(Tonemap, AutoExposurePicksPercentileOfNonzero) {
  io::ImageF flux(10, 1);
  for (int x = 0; x < 10; ++x) flux(x, 0) = static_cast<float>(x);
  // percentile 100 over nonzero {1..9} -> full scale 9.
  EXPECT_FLOAT_EQ(io::auto_full_scale(flux, 100.0f), 9.0f);
  // 50th percentile of 9 nonzero values -> rank 4 -> value 5.
  EXPECT_FLOAT_EQ(io::auto_full_scale(flux, 50.0f), 5.0f);
}

TEST(Tonemap, AutoExposureOnBlackImageIsSafe) {
  io::ImageF flux(4, 4);
  EXPECT_FLOAT_EQ(io::auto_full_scale(flux, 99.0f), 1.0f);
  io::TonemapOptions opts;
  opts.auto_expose = true;
  const io::ImageU8 out = io::tonemap_u8(flux, opts);
  for (auto v : out.pixels()) EXPECT_EQ(v, 0);
}

TEST(Tonemap, RejectsBadParameters) {
  io::ImageF flux(1, 1, 1.0f);
  io::TonemapOptions opts;
  opts.full_scale = 0.0f;
  EXPECT_THROW((void)io::tonemap_u8(flux, opts), PreconditionError);
  opts.full_scale = 1.0f;
  opts.gamma = 0.0f;
  EXPECT_THROW((void)io::tonemap_u8(flux, opts), PreconditionError);
  EXPECT_THROW((void)io::auto_full_scale(flux, 0.0f), PreconditionError);
  EXPECT_THROW((void)io::auto_full_scale(flux, 101.0f), PreconditionError);
  io::ImageF empty;
  EXPECT_THROW((void)io::tonemap_u8(empty), PreconditionError);
}

}  // namespace
