#include "starsim/multi_gpu_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/fault_injector.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::MultiGpuSimulator;
using starsim::ParallelSimulator;
using starsim::SceneConfig;
using starsim::SimulationResult;
using starsim::StarField;

SceneConfig scene_of(int edge, int roi) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

StarField workload_of(int edge, std::size_t count) {
  starsim::WorkloadConfig workload;
  workload.star_count = count;
  workload.image_width = edge;
  workload.image_height = edge;
  return generate_stars(workload);
}

TEST(MultiGpu, RejectsZeroDevices) {
  EXPECT_THROW(MultiGpuSimulator(0), starsim::support::PreconditionError);
}

TEST(MultiGpu, MatchesSingleDeviceImage) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 300);

  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator single(device);
  MultiGpuSimulator quad(4);
  const auto a = single.simulate(scene, stars).image;
  const auto b = quad.simulate(scene, stars).image;
  double peak = 0.0;
  for (float v : a.pixels()) peak = std::max(peak, static_cast<double>(v));
  EXPECT_LT(max_abs_difference(a, b) / peak, 1e-4);
}

TEST(MultiGpu, OneDeviceDegeneratesToParallel) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 64);
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator single(device);
  MultiGpuSimulator one(1);
  const SimulationResult a = single.simulate(scene, stars);
  const SimulationResult b = one.simulate(scene, stars);
  EXPECT_EQ(max_abs_difference(a.image, b.image), 0.0);
  EXPECT_DOUBLE_EQ(a.timing.kernel_s, b.timing.kernel_s);
}

TEST(MultiGpu, KernelTimeShrinksWithDevices) {
  // 2^14 stars saturate one device; splitting across 4 cuts the per-device
  // kernel time (paper future work: "better performance").
  const SceneConfig scene = scene_of(256, 10);
  const StarField stars = workload_of(256, 1 << 14);
  MultiGpuSimulator one(1);
  MultiGpuSimulator four(4);
  const double t1 = one.simulate(scene, stars).timing.kernel_s;
  const double t4 = four.simulate(scene, stars).timing.kernel_s;
  EXPECT_LT(t4, t1 * 0.5);
  EXPECT_GT(t4, t1 * 0.1);
}

TEST(MultiGpu, TransfersAccumulateAcrossDevices) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 64);
  MultiGpuSimulator one(1);
  MultiGpuSimulator four(4);
  const SimulationResult a = one.simulate(scene, stars);
  const SimulationResult b = four.simulate(scene, stars);
  // The shared PCIe bus: four devices move four images each way.
  EXPECT_GT(b.timing.h2d_s, a.timing.h2d_s * 3.0);
  EXPECT_GT(b.timing.host_reduce_s, a.timing.host_reduce_s);
}

TEST(MultiGpu, CountersMergeAllDevices) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 64);
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator single(device);
  MultiGpuSimulator four(4);
  const auto a = single.simulate(scene, stars).timing.counters;
  const auto b = four.simulate(scene, stars).timing.counters;
  // Same active work overall (padding blocks differ with the partition).
  EXPECT_EQ(b.atomic_ops, a.atomic_ops);
  EXPECT_EQ(b.flops, a.flops);
}

TEST(MultiGpu, MoreDevicesThanStarsStillCorrect) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 3);
  MultiGpuSimulator eight(8);
  const SimulationResult r = eight.simulate(scene, stars);
  EXPECT_GT(total_flux(r.image), 0.0);
}

TEST(MultiGpu, EmptyFieldShortCircuits) {
  MultiGpuSimulator two(2);
  const SimulationResult r = two.simulate(scene_of(64, 10), StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
}

TEST(MultiGpu, LostDeviceIsQuarantinedAndSurvivorsFinishTheFrame) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 400);

  MultiGpuSimulator fleet(4);
  gs::FaultInjector injector(gs::FaultPolicy{});
  fleet.device(1).set_fault_injector(&injector);
  injector.mark_device_lost();

  const SimulationResult survived = fleet.simulate(scene, stars);
  EXPECT_EQ(fleet.quarantined_count(), 1);
  EXPECT_TRUE(fleet.is_quarantined(1));
  EXPECT_FALSE(fleet.is_quarantined(0));

  // The three survivors re-share the full field: bit-identical to a
  // three-device fleet that never saw a fault.
  MultiGpuSimulator reference(3);
  const SimulationResult expected = reference.simulate(scene, stars);
  EXPECT_EQ(max_abs_difference(expected.image, survived.image), 0.0);
}

TEST(MultiGpu, QuarantinePersistsAcrossCalls) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 100);
  MultiGpuSimulator fleet(2);
  gs::FaultInjector injector(gs::FaultPolicy{});
  fleet.device(0).set_fault_injector(&injector);
  injector.mark_device_lost();
  (void)fleet.simulate(scene, stars);
  ASSERT_EQ(fleet.quarantined_count(), 1);
  // A later frame must not re-probe the dead device.
  const SimulationResult again = fleet.simulate(scene, stars);
  EXPECT_EQ(fleet.quarantined_count(), 1);
  EXPECT_GT(total_flux(again.image), 0.0);
}

TEST(MultiGpu, AllDevicesLostThrowsDeviceLost) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 50);
  MultiGpuSimulator fleet(2);
  gs::FaultInjector a{gs::FaultPolicy{}};
  gs::FaultInjector b{gs::FaultPolicy{}};
  fleet.device(0).set_fault_injector(&a);
  fleet.device(1).set_fault_injector(&b);
  a.mark_device_lost();
  b.mark_device_lost();
  EXPECT_THROW((void)fleet.simulate(scene, stars),
               starsim::support::DeviceLostError);
  EXPECT_EQ(fleet.quarantined_count(), 2);
}

TEST(MultiGpu, MemoryCapacityScalesWithDevices) {
  // The paper's second future-work motivation: "more memory space". Each
  // device holds only its chunk of the star array.
  gs::DeviceSpec tiny = gs::DeviceSpec::gtx480();
  tiny.global_memory_bytes = 4 << 20;  // image (64 KiB) + small star budget
  const SceneConfig scene = scene_of(128, 4);
  // 300k stars x 16 B = 4.8 MB: too much with the image for one tiny
  // device, fine when split across four.
  const StarField stars = workload_of(128, 300000);
  MultiGpuSimulator one(1, tiny);
  EXPECT_THROW((void)one.simulate(scene, stars),
               starsim::support::DeviceError);
  MultiGpuSimulator four(4, tiny);
  EXPECT_NO_THROW((void)four.simulate(scene, stars));
}

}  // namespace
