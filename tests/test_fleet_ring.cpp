// Dynamic ring membership: add_shard / remove_shard at runtime.
//
// Consistent hashing promises bounded key movement — growing the ring
// moves keys only onto the newcomer (roughly replicas/(N+1) of them),
// shrinking moves keys only off the retiree — and the router warms the
// new owners with its hot scenes before cutover so resizes don't turn
// into cache-miss storms.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "imageio/image.h"
#include "serve/fingerprint.h"
#include "support/rng.h"

namespace {

namespace fleet = starsim::fleet;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 48;
  scene.image_height = 48;
  scene.roi_side = 8;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 3.0f + 9.0f * static_cast<float>(rng.uniform());
    star.x = 48.0f * static_cast<float>(rng.uniform());
    star.y = 48.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

// Routing keys hash the SceneConfig, so each seed must yield a distinct
// scene (not just distinct stars) to spread requests over the ring.
RenderRequest scene_request(std::uint64_t seed) {
  RenderRequest request;
  request.scene = small_scene();
  request.scene.psf_sigma = 0.8 + 0.01 * static_cast<double>(seed);
  request.stars = random_stars(seed, 12);
  request.simulator = SimulatorKind::kParallel;
  return request;
}

fleet::FleetOptions ring_options(int shards) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.replicas = 2;
  options.router_threads = 2;
  options.virtual_nodes = 64;  // smooth splits for the movement bound
  options.shard.workers = 1;
  options.shard.cache_capacity = 16;
  return options;
}

std::vector<std::vector<int>> replica_map(const fleet::ShardRouter& router,
                                          std::size_t keys) {
  std::vector<std::vector<int>> map;
  map.reserve(keys);
  for (std::uint64_t key = 0; key < keys; ++key) {
    std::vector<int> replicas =
        router.replicas_for(0x9e3779b97f4a7c15ull * (key + 1));
    std::sort(replicas.begin(), replicas.end());
    map.push_back(std::move(replicas));
  }
  return map;
}

// --- Growth: keys move only onto the newcomer, within the bound ------------

TEST(FleetRing, AddShardMovesKeysOnlyOntoTheNewcomerWithinBound) {
  fleet::FleetOptions options = ring_options(4);
  fleet::ShardRouter router(options);

  constexpr std::size_t kKeys = 512;
  const std::vector<std::vector<int>> before = replica_map(router, kKeys);

  const int newcomer = router.add_shard();
  EXPECT_EQ(newcomer, 4);
  EXPECT_EQ(router.shard_count(), 5);
  EXPECT_EQ(router.shard_state(newcomer), fleet::ShardState::kHealthy);

  const std::vector<std::vector<int>> after = replica_map(router, kKeys);
  std::size_t moved = 0;
  for (std::size_t key = 0; key < kKeys; ++key) {
    if (after[key] == before[key]) continue;
    ++moved;
    // Consistent hashing: a changed set may only have gained the newcomer;
    // every other member was already a replica for this key.
    for (int shard : after[key]) {
      if (shard == newcomer) continue;
      EXPECT_TRUE(std::find(before[key].begin(), before[key].end(), shard) !=
                  before[key].end())
          << "key " << key << " moved onto shard " << shard
          << ", which is not the newcomer";
    }
    EXPECT_TRUE(std::find(after[key].begin(), after[key].end(), newcomer) !=
                after[key].end())
        << "key " << key << " changed owners without gaining the newcomer";
  }
  // Expected movement is ~replicas/(N+1) = 2/5 of keys; allow generous
  // slack for virtual-node variance but fail on anything near a rehash.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kKeys, 0.6)
      << "ring growth moved " << moved << "/" << kKeys
      << " keys; bound suggests a full rehash";

  // The grown fleet serves through the newcomer.
  const RenderResponse response = router.render(scene_request(77));
  ASSERT_NE(response.result, nullptr);
  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(stats.shards_added, 1u);
}

// --- Cache-warming handoff -------------------------------------------------

TEST(FleetRing, AddShardWarmsNewOwnerWithHotScenes) {
  fleet::FleetOptions options = ring_options(2);
  fleet::ShardRouter router(options);

  // Make a dozen scenes hot; each lands in the router's hot-scene LRU and
  // the owning shards' response caches.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    (void)router.render(scene_request(seed));
  }

  const int newcomer = router.add_shard();
  fleet::FleetStats stats = router.stats();
  // With 12 hot scenes and the newcomer joining 2/3 of replica sets, at
  // least one hot scene lands on it and is replayed during the handoff.
  EXPECT_GE(stats.warm_replays, 1u);
  EXPECT_EQ(stats.warm_failures, 0u);

  // Prove the newcomer itself was warmed: retire the old owners so only
  // the newcomer can serve, then re-render a hot scene it owns. A cache
  // hit means the frame crossed during warming, not now.
  router.kill_shard(0);
  router.kill_shard(1);
  bool verified = false;
  for (std::uint64_t seed = 0; seed < 12 && !verified; ++seed) {
    const RenderRequest request = scene_request(seed);
    const std::vector<int> owners =
        router.replicas_for(starsim::serve::fingerprint_scene(request.scene));
    if (std::find(owners.begin(), owners.end(), newcomer) == owners.end()) {
      continue;
    }
    const RenderResponse response = router.render(request);
    ASSERT_NE(response.result, nullptr);
    EXPECT_TRUE(response.from_cache)
        << "hot scene " << seed << " missed the newcomer's cache";
    verified = true;
  }
  EXPECT_TRUE(verified) << "no hot scene owned by the newcomer";

  router.stop();
  stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
}

// --- Shrink: keys move only off the retiree --------------------------------

TEST(FleetRing, RemoveShardRetiresCleanlyAndKeysMoveOffOnly) {
  fleet::FleetOptions options = ring_options(4);
  fleet::ShardRouter router(options);

  // Heat a few scenes so the retiree's hot keys get replayed to gainers.
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    (void)router.render(scene_request(seed));
  }

  constexpr std::size_t kKeys = 512;
  const std::vector<std::vector<int>> before = replica_map(router, kKeys);
  constexpr int kRetiree = 2;
  router.remove_shard(kRetiree);
  EXPECT_EQ(router.shard_state(kRetiree), fleet::ShardState::kRetired);

  const std::vector<std::vector<int>> after = replica_map(router, kKeys);
  for (std::size_t key = 0; key < kKeys; ++key) {
    EXPECT_TRUE(std::find(after[key].begin(), after[key].end(), kRetiree) ==
                after[key].end())
        << "key " << key << " still routes to the retired shard";
    if (std::find(before[key].begin(), before[key].end(), kRetiree) ==
        before[key].end()) {
      // Keys the retiree never owned must not move at all.
      EXPECT_EQ(after[key], before[key])
          << "key " << key << " moved despite not touching the retiree";
    }
  }

  // The shrunk fleet still serves, including previously hot scenes.
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    const RenderResponse response = router.render(scene_request(seed));
    ASSERT_NE(response.result, nullptr);
  }
  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(stats.shards_removed, 1u);
}

}  // namespace
