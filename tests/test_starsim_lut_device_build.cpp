#include "starsim/lut_device_build.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::build_lookup_table_on_device;
using starsim::DeviceLutBuild;
using starsim::LookupTable;
using starsim::LookupTableOptions;
using starsim::SceneConfig;

SceneConfig scene_of(int roi, double sigma = 1.7) {
  SceneConfig scene;
  scene.roi_side = roi;
  scene.psf_sigma = sigma;
  return scene;
}

void expect_matches_host_build(const SceneConfig& scene,
                               const LookupTableOptions& options) {
  gs::Device device(gs::DeviceSpec::gtx480());
  DeviceLutBuild built = build_lookup_table_on_device(device, scene, options);
  const LookupTable reference = LookupTable::build(scene, options);
  ASSERT_EQ(built.width, reference.width());
  ASSERT_EQ(built.height, reference.height());

  std::vector<float> values(reference.entries());
  device.memcpy_d2h(std::span<float>(values), built.table);
  const auto expected = reference.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float e = expected[i];
    ASSERT_NEAR(values[i], e, std::abs(e) * 1e-5f + 1e-12f) << "index " << i;
  }
  device.free(built.table);
}

TEST(DeviceLutBuildTest, MatchesHostBuildAtPaperGeometry) {
  expect_matches_host_build(scene_of(10), LookupTableOptions{});
}

TEST(DeviceLutBuildTest, MatchesHostBuildWithFineBins) {
  LookupTableOptions options;
  options.bins_per_magnitude = 8;
  expect_matches_host_build(scene_of(6), options);
}

TEST(DeviceLutBuildTest, MatchesHostBuildWithSubpixelPhases) {
  LookupTableOptions options;
  options.subpixel_phases = 4;
  expect_matches_host_build(scene_of(7, 1.2), options);
}

TEST(DeviceLutBuildTest, MatchesHostBuildIntegratedMode) {
  SceneConfig scene = scene_of(9, 0.9);
  scene.pixel_integration = true;
  expect_matches_host_build(scene, LookupTableOptions{});
}

TEST(DeviceLutBuildTest, ReportsKernelTiming) {
  gs::Device device(gs::DeviceSpec::gtx480());
  DeviceLutBuild built = build_lookup_table_on_device(device, scene_of(10));
  EXPECT_GT(built.kernel_s, 0.0);
  EXPECT_GT(built.flops, 0u);
  EXPECT_GT(built.utilization, 0.0);
  // The build kernel runs occupancy-limited — the quantitative face of the
  // paper's "little data parallelism": 10-thread blocks put 1 warp in each
  // of the 8 residency slots per SM, 8/24 of the saturation point.
  EXPECT_LT(built.utilization, 0.4);
  device.free(built.table);
}

TEST(DeviceLutBuildTest, OccupancyCeilingIndependentOfTableSize) {
  // Growing the table cannot lift utilization past the block-residency
  // ceiling (tiny blocks, 8 resident per SM); kernel time instead scales
  // with the entry count.
  gs::Device device(gs::DeviceSpec::gtx480());
  DeviceLutBuild small = build_lookup_table_on_device(device, scene_of(10));
  LookupTableOptions options;
  options.bins_per_magnitude = 32;
  options.subpixel_phases = 4;
  DeviceLutBuild large =
      build_lookup_table_on_device(device, scene_of(10), options);
  EXPECT_NEAR(large.utilization, small.utilization, 1e-9);
  EXPECT_NEAR(large.utilization, 8.0 / 24.0, 1e-9);
  // 32 bins x 16 phases = 512x the entries of the 15-bin, 1-phase table.
  const double entry_ratio = (32.0 * 15.0 * 16.0) / 15.0;
  EXPECT_NEAR(large.kernel_s / small.kernel_s, entry_ratio,
              entry_ratio * 0.35);  // launch overhead skews the small one
  device.free(small.table);
  device.free(large.table);
}

TEST(DeviceLutBuildTest, RejectsBadOptions) {
  gs::Device device(gs::DeviceSpec::gtx480());
  LookupTableOptions options;
  options.bins_per_magnitude = 0;
  EXPECT_THROW(
      (void)build_lookup_table_on_device(device, scene_of(10), options),
      starsim::support::PreconditionError);
}

}  // namespace
