// ShardRouter placement and admission policy: consistent-hash ring
// determinism, replica distinctness, served-frame bit-identity through the
// wire boundary, router-level backpressure and priority shedding, and
// aggregate stats accounting.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "imageio/image.h"
#include "serve/fingerprint.h"
#include "starsim/parallel_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
namespace fleet = starsim::fleet;
using starsim::ParallelSimulator;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::ImageF;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::RequestPriority;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 10;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest pinned_request(const StarField& stars, SimulatorKind kind) {
  RenderRequest request;
  request.scene = small_scene();
  request.stars = stars;
  request.simulator = kind;
  return request;
}

fleet::FleetOptions quiet_options(int shards, int replicas) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.replicas = replicas;
  options.router_threads = 2;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  return options;
}

TEST(FleetRouter, RingIsDeterministicAndReplicasAreDistinct) {
  fleet::ShardRouter router(quiet_options(5, 3));
  for (std::uint64_t key = 0; key < 200; ++key) {
    const std::vector<int> replicas = router.replicas_for(key);
    ASSERT_EQ(replicas.size(), 3u) << "key " << key;
    const std::set<int> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 3u) << "duplicate replica for key " << key;
    EXPECT_EQ(router.replicas_for(key), replicas) << "unstable for " << key;
    for (const int s : replicas) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 5);
    }
  }
}

TEST(FleetRouter, RingSpreadsKeysAcrossEveryShard) {
  fleet::ShardRouter router(quiet_options(4, 1));
  std::vector<int> primaries(4, 0);
  for (std::uint64_t key = 0; key < 4000; ++key) {
    primaries[static_cast<std::size_t>(router.replicas_for(key)[0])] += 1;
  }
  for (int s = 0; s < 4; ++s) {
    // With 16 virtual nodes the split is rough, not exact: every shard must
    // own a material share of the keyspace.
    EXPECT_GT(primaries[static_cast<std::size_t>(s)], 4000 / 16)
        << "shard " << s << " owns almost nothing";
  }
}

TEST(FleetRouter, ReplicasNeverExceedShardCount) {
  fleet::ShardRouter router(quiet_options(2, 5));
  EXPECT_EQ(router.options().replicas, 2);
  EXPECT_EQ(router.replicas_for(123).size(), 2u);
}

TEST(FleetRouter, ServedFramesAreBitIdenticalToDirectRenders) {
  fleet::ShardRouter router(quiet_options(3, 2));
  for (std::uint64_t i = 0; i < 6; ++i) {
    const StarField stars = random_stars(100 + i, 30);
    gs::Device device(gs::DeviceSpec::gtx480());
    const ImageF direct =
        ParallelSimulator(device).simulate(small_scene(), stars).image;
    const RenderResponse response =
        router.render(pinned_request(stars, SimulatorKind::kParallel));
    ASSERT_NE(response.result, nullptr);
    EXPECT_EQ(max_abs_difference(response.result->image, direct), 0.0);
    EXPECT_FALSE(response.degraded);
  }
  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_GT(stats.wire_request_bytes, 0u);
  EXPECT_GT(stats.wire_reply_bytes, 0u);
}

TEST(FleetRouter, BackpressureRejectsLowPriorityWhenReplicasSaturated) {
  fleet::FleetOptions options = quiet_options(2, 2);
  // Watermark 0: every live replica counts as saturated from the first
  // request, making the admission decision deterministic.
  options.backpressure_ratio = 0.0;
  fleet::ShardRouter router(options);

  RenderRequest low = pinned_request(random_stars(1, 10),
                                     SimulatorKind::kParallel);
  low.priority = RequestPriority::kLow;
  EXPECT_FALSE(router.try_submit(std::move(low)).has_value());

  RenderRequest normal = pinned_request(random_stars(1, 10),
                                        SimulatorKind::kParallel);
  normal.priority = RequestPriority::kNormal;
  auto future = router.try_submit(std::move(normal));
  ASSERT_TRUE(future.has_value());
  EXPECT_NE(future->get().result, nullptr);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.backpressure_rejected, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FleetRouter, RouterQueueShedsLowPriorityForHigh) {
  fleet::FleetOptions options = quiet_options(1, 1);
  options.router_threads = 1;
  options.router_queue_capacity = 2;
  // One slow shard render pins the single router thread long enough for
  // the admission race below to be deterministic.
  options.straggler_shard = 0;
  options.straggler_ms = 150.0;
  fleet::ShardRouter router(options);

  // Occupies the router thread (popped immediately, then renders slowly).
  auto head = router.submit(
      pinned_request(random_stars(2, 10), SimulatorKind::kParallel));
  while (router.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Fill the router queue with low-priority work.
  std::vector<std::future<RenderResponse>> low;
  for (int i = 0; i < 2; ++i) {
    RenderRequest request =
        pinned_request(random_stars(3, 10), SimulatorKind::kParallel);
    request.priority = RequestPriority::kLow;
    auto admitted = router.try_submit(std::move(request));
    ASSERT_TRUE(admitted.has_value()) << "queue not full yet";
    low.push_back(std::move(*admitted));
  }

  // A high-priority arrival displaces the youngest queued low request.
  RenderRequest urgent =
      pinned_request(random_stars(4, 10), SimulatorKind::kParallel);
  urgent.priority = RequestPriority::kHigh;
  auto high = router.try_submit(std::move(urgent));
  ASSERT_TRUE(high.has_value());

  EXPECT_NE(head.get().result, nullptr);
  EXPECT_NE(high->get().result, nullptr);
  std::size_t shed = 0;
  std::size_t served = 0;
  for (auto& future : low) {
    try {
      (void)future.get();
      ++served;
    } catch (const starsim::support::OverloadShedError&) {
      ++shed;
    }
  }
  EXPECT_EQ(shed, 1u);
  EXPECT_EQ(served, 1u);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.router_shed, 1u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FleetRouter, PreExpiredDeadlinesFailFastWithoutRouting) {
  fleet::ShardRouter router(quiet_options(2, 1));
  RenderRequest request =
      pinned_request(random_stars(5, 10), SimulatorKind::kParallel);
  request.deadline_s = 0.0;
  auto future = router.submit(std::move(request));
  EXPECT_THROW((void)future.get(),
               starsim::support::DeadlineExceededError);
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.expired_router, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FleetRouter, InvalidScenesThrowSynchronously) {
  fleet::ShardRouter router(quiet_options(1, 1));
  RenderRequest request =
      pinned_request(random_stars(6, 10), SimulatorKind::kParallel);
  request.scene.image_width = 0;
  EXPECT_THROW((void)router.submit(std::move(request)),
               starsim::support::PreconditionError);
}

TEST(FleetRouter, SubmitAfterStopThrows) {
  fleet::ShardRouter router(quiet_options(1, 1));
  router.stop();
  EXPECT_THROW((void)router.submit(pinned_request(random_stars(7, 10),
                                                  SimulatorKind::kParallel)),
               starsim::support::Error);
}

TEST(FleetRouter, ScrapeMergesShardFamiliesWithInstanceLabels) {
  fleet::ShardRouter router(quiet_options(2, 2));
  (void)router.render(
      pinned_request(random_stars(8, 12), SimulatorKind::kParallel));
  const std::string scrape = router.scrape_metrics();

  // Fleet families present.
  EXPECT_NE(scrape.find("starsim_fleet_requests_total"), std::string::npos);
  EXPECT_NE(scrape.find("starsim_fleet_hedges_total"), std::string::npos);
  EXPECT_NE(scrape.find("starsim_fleet_shard_state"), std::string::npos);
  // Shard serve families appear once (one HELP line) with per-instance
  // samples — not N colliding copies.
  const std::string help_marker = "# HELP starsim_serve_requests_total";
  const std::size_t first = scrape.find(help_marker);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(scrape.find(help_marker, first + 1), std::string::npos)
      << "duplicate family exposition";
  EXPECT_NE(scrape.find("instance=\"shard-0\""), std::string::npos);
  EXPECT_NE(scrape.find("instance=\"shard-1\""), std::string::npos);
}

}  // namespace
