#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/csv.h"
#include "support/error.h"
#include "support/table.h"

namespace {

namespace sup = starsim::support;
using sup::PreconditionError;

TEST(ConsoleTable, RendersHeaderRuleAndRows) {
  sup::ConsoleTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(ConsoleTable, NumericCellsRightAligned) {
  sup::ConsoleTable table({"v"});
  table.add_row({"1"});
  table.add_row({"1000"});
  const std::string out = table.render();
  // "1" must be padded to the width of "1000": appears as "   1".
  EXPECT_NE(out.find("   1\n"), std::string::npos);
}

TEST(ConsoleTable, RejectsArityMismatch) {
  sup::ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(ConsoleTable, RejectsEmptyHeader) {
  EXPECT_THROW(sup::ConsoleTable(std::vector<std::string>{}),
               PreconditionError);
}

TEST(CsvWriter, RendersHeaderAndRows) {
  sup::CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.render(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(sup::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(sup::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(sup::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(sup::CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, RejectsArityMismatch) {
  sup::CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), PreconditionError);
}

TEST(CsvWriter, WritesFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/starsim_csv_test.csv";
  sup::CsvWriter csv({"k", "v"});
  csv.add_row({"speed", "97"});
  csv.write_file(path);
  std::ifstream file(path);
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nspeed,97\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  sup::CsvWriter csv({"a"});
  EXPECT_THROW(csv.write_file("/nonexistent-dir/zzz/file.csv"),
               starsim::support::IoError);
}

}  // namespace
