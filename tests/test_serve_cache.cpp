#include "serve/frame_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "starsim/breakdown.h"

namespace {

using starsim::SimulationResult;
using starsim::SimulatorKind;
using starsim::serve::CachedFrame;
using starsim::serve::FrameCache;

CachedFrame frame_with_kernel_time(double kernel_s) {
  auto result = std::make_shared<SimulationResult>();
  result->timing.kernel_s = kernel_s;
  return CachedFrame{std::move(result), SimulatorKind::kParallel};
}

TEST(FrameCache, MissThenHit) {
  FrameCache cache(4);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, frame_with_kernel_time(0.5));
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->result->timing.kernel_s, 0.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(FrameCache, HitSharesOwnershipNotACopy) {
  FrameCache cache(2);
  CachedFrame frame = frame_with_kernel_time(1.0);
  const SimulationResult* stored = frame.result.get();
  cache.insert(9, frame);
  const auto hit = cache.lookup(9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.get(), stored);
}

TEST(FrameCache, EvictsLeastRecentlyUsed) {
  FrameCache cache(2);
  cache.insert(1, frame_with_kernel_time(1.0));
  cache.insert(2, frame_with_kernel_time(2.0));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, frame_with_kernel_time(3.0));  // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(FrameCache, ReinsertRefreshesInsteadOfEvicting) {
  FrameCache cache(2);
  cache.insert(1, frame_with_kernel_time(1.0));
  cache.insert(2, frame_with_kernel_time(2.0));
  cache.insert(1, frame_with_kernel_time(10.0));  // refresh, no eviction
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->result->timing.kernel_s, 10.0);
  // The refresh promoted key 1, so a new insert evicts key 2.
  cache.insert(3, frame_with_kernel_time(3.0));
  EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(FrameCache, InvalidateRemovesSingleEntry) {
  FrameCache cache(4);
  cache.insert(1, frame_with_kernel_time(1.0));
  cache.insert(2, frame_with_kernel_time(2.0));
  EXPECT_TRUE(cache.invalidate(1));
  EXPECT_FALSE(cache.invalidate(1));  // already gone
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
}

TEST(FrameCache, ClearDropsEntriesKeepsCounters) {
  FrameCache cache(4);
  cache.insert(1, frame_with_kernel_time(1.0));
  ASSERT_TRUE(cache.lookup(1).has_value());
  cache.clear();
  EXPECT_FALSE(cache.lookup(1).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 1u);  // history survives the clear
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(FrameCache, ZeroCapacityDisablesCaching) {
  FrameCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(1, frame_with_kernel_time(1.0));
  EXPECT_FALSE(cache.lookup(1).has_value());
  // Disabled caches do not even count lookups: hit rate stays undefined/0.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

}  // namespace
