// Pixel-integrated PSF mode: the exact pixel response threaded through all
// simulators, the lookup table, and the work predictor.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/device.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::Star;
using starsim::StarField;

SceneConfig integrated_scene(int edge, int roi, double sigma = 1.7) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  scene.psf_sigma = sigma;
  scene.pixel_integration = true;
  return scene;
}

double peak_of(const starsim::imageio::ImageF& image) {
  double peak = 0.0;
  for (float v : image.pixels()) peak = std::max(peak, static_cast<double>(v));
  return peak > 0.0 ? peak : 1.0;
}

TEST(Integrated, FluxExactlyConservedEvenForTinySigma) {
  // The integrated response tiles the plane: an interior star's total image
  // flux equals its brightness for ANY sigma — including sub-pixel ones
  // where point sampling fails badly.
  SequentialSimulator sim;
  for (double sigma : {0.3, 0.8, 1.7}) {
    const SceneConfig scene = integrated_scene(64, 20, sigma);
    const StarField stars{Star{4.0f, 32.0f, 32.0f, 1.0f}};
    const auto result = sim.simulate(scene, stars);
    const double brightness = scene.brightness.brightness(4.0);
    EXPECT_NEAR(total_flux(result.image), brightness, brightness * 2e-3)
        << "sigma=" << sigma;
  }
}

TEST(Integrated, PointSamplingOverestimatesAtSmallSigma) {
  // The comparison that motivates the mode: at sigma 0.3 a pixel-centered
  // star's point-sampled image holds far more than its brightness.
  SequentialSimulator sim;
  SceneConfig point = integrated_scene(64, 20, 0.3);
  point.pixel_integration = false;
  const StarField stars{Star{4.0f, 32.0f, 32.0f, 1.0f}};
  const double brightness = point.brightness.brightness(4.0);
  const double sampled = total_flux(sim.simulate(point, stars).image);
  EXPECT_GT(sampled, brightness * 1.5);
}

TEST(Integrated, AllSimulatorsAgree) {
  const SceneConfig scene = integrated_scene(128, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 200;
  workload.image_width = 128;
  workload.image_height = 128;
  workload.integer_positions = false;
  const StarField stars = generate_stars(workload);

  SequentialSimulator seq;
  const auto reference = seq.simulate(scene, stars).image;
  const double peak = peak_of(reference);

  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator parallel(device);
  starsim::PixelCentricSimulator pixel_centric(device);
  starsim::OpenMpSimulator openmp(4);
  EXPECT_LT(max_abs_difference(reference,
                               parallel.simulate(scene, stars).image) /
                peak,
            1e-4);
  EXPECT_LT(max_abs_difference(reference,
                               pixel_centric.simulate(scene, stars).image) /
                peak,
            1e-4);
  EXPECT_LT(max_abs_difference(reference,
                               openmp.simulate(scene, stars).image) /
                peak,
            1e-5);
}

TEST(Integrated, AdaptiveLookupTableUsesIntegratedRates) {
  const SceneConfig scene = integrated_scene(128, 10);
  // Bin-centered magnitudes + integer positions: adaptive must match.
  StarField stars;
  for (int i = 0; i < 80; ++i) {
    Star star;
    star.magnitude = static_cast<float>((i % 15) + 0.5);
    star.x = static_cast<float>(12 + (i * 7) % 100);
    star.y = static_cast<float>(12 + (i * 11) % 100);
    stars.push_back(star);
  }
  SequentialSimulator seq;
  const auto reference = seq.simulate(scene, stars).image;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::AdaptiveSimulator adaptive(device);
  const auto image = adaptive.simulate(scene, stars).image;
  EXPECT_LT(max_abs_difference(reference, image) / peak_of(reference), 1e-4);
}

TEST(Integrated, PredictorTracksIntegratedFlops) {
  const SceneConfig scene = integrated_scene(256, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 100;
  workload.image_width = 256;
  workload.image_height = 256;
  workload.border_margin = 8;
  const StarField stars = generate_stars(workload);

  // Sequential flop parity.
  SequentialSimulator seq;
  const starsim::SimulatorSelector selector;
  EXPECT_EQ(seq.simulate(scene, stars).timing.counters.flops,
            selector.predict_sequential_flops(scene, stars.size()));

  // Parallel kernel flop parity.
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator parallel(device);
  EXPECT_EQ(parallel.simulate(scene, stars).timing.counters.flops,
            selector.predict_parallel_counters(scene, stars.size()).flops);
}

TEST(Integrated, CostsMoreThanPointSamplingOnTheModeledGpu) {
  // Four erf (120 each) vs one exp (160): the integrated kernel is pricier,
  // visible in the modeled kernel time.
  const starsim::SimulatorSelector selector;
  SceneConfig point;
  SceneConfig integ;
  integ.pixel_integration = true;
  const auto t_point =
      selector.predict(point, 8192).parallel.kernel_s;
  const auto t_integrated =
      selector.predict(integ, 8192).parallel.kernel_s;
  EXPECT_GT(t_integrated, t_point * 1.5);
}

TEST(Integrated, ConvergesToPointSamplingForWideSigma) {
  // At sigma >> 1 pixel the response varies slowly across a pixel; both
  // models agree closely.
  SequentialSimulator sim;
  const StarField stars{Star{3.0f, 32.0f, 32.0f, 1.0f}};
  SceneConfig integ = integrated_scene(64, 20, 4.0);
  SceneConfig point = integ;
  point.pixel_integration = false;
  const auto a = sim.simulate(integ, stars).image;
  const auto b = sim.simulate(point, stars).image;
  EXPECT_LT(max_abs_difference(a, b) / peak_of(a), 1e-2);
}

}  // namespace
