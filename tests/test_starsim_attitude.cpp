#include "starsim/attitude.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace {

using starsim::Quaternion;
using starsim::Vec3;

constexpr double kPi = std::numbers::pi;

void expect_vec_near(const Vec3& a, const Vec3& b, double tol = 1e-12) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Vec3Test, BasicAlgebra) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, -5, 6};
  expect_vec_near(a + b, {5, -3, 9});
  expect_vec_near(a - b, {-3, 7, -3});
  expect_vec_near(a * 2.0, {2, 4, 6});
  EXPECT_DOUBLE_EQ(a.dot(b), 12.0);
  expect_vec_near(a.cross(b), {27, 6, -13});
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}.norm()), 5.0);
}

TEST(Vec3Test, NormalizedHasUnitLength) {
  const Vec3 v = Vec3{3, 4, 12}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-14);
  EXPECT_THROW((void)(Vec3{0, 0, 0}.normalized()),
               starsim::support::PreconditionError);
}

TEST(QuaternionTest, IdentityLeavesVectorsAlone) {
  const Quaternion q = Quaternion::identity();
  expect_vec_near(q.rotate({1, 2, 3}), {1, 2, 3});
}

TEST(QuaternionTest, QuarterTurnAboutZ) {
  const Quaternion q = Quaternion::from_axis_angle({0, 0, 1}, kPi / 2);
  expect_vec_near(q.rotate({1, 0, 0}), {0, 1, 0});
  expect_vec_near(q.rotate({0, 1, 0}), {-1, 0, 0});
  expect_vec_near(q.rotate({0, 0, 1}), {0, 0, 1});
}

TEST(QuaternionTest, RotationPreservesLengthAndAngles) {
  starsim::support::Pcg32 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Quaternion q = Quaternion::from_axis_angle(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1) + 2.0},
        rng.uniform(-kPi, kPi));
    const Vec3 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 b{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 ra = q.rotate(a);
    const Vec3 rb = q.rotate(b);
    ASSERT_NEAR(ra.norm(), a.norm(), 1e-10);
    ASSERT_NEAR(ra.dot(rb), a.dot(b), 1e-9);
  }
}

TEST(QuaternionTest, CompositionMatchesSequentialRotation) {
  const Quaternion a = Quaternion::from_axis_angle({0, 0, 1}, 0.7);
  const Quaternion b = Quaternion::from_axis_angle({1, 0, 0}, -1.1);
  const Vec3 v{1, 2, 3};
  expect_vec_near((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-12);
}

TEST(QuaternionTest, ConjugateInvertsRotation) {
  const Quaternion q = Quaternion::from_axis_angle({1, 2, 3}, 0.9);
  const Vec3 v{4, -5, 6};
  expect_vec_near(q.conjugate().rotate(q.rotate(v)), v, 1e-12);
}

TEST(QuaternionTest, AxisAngleProducesUnitQuaternion) {
  const Quaternion q = Quaternion::from_axis_angle({2, 0, 0}, 1.2345);
  EXPECT_NEAR(q.norm(), 1.0, 1e-14);
}

TEST(QuaternionTest, NormalizedRescales) {
  const Quaternion q(2.0, 0.0, 0.0, 0.0);
  const Quaternion n = q.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-14);
  EXPECT_NEAR(n.w(), 1.0, 1e-14);
  EXPECT_THROW((void)Quaternion(0, 0, 0, 0).normalized(),
               starsim::support::PreconditionError);
}

TEST(QuaternionTest, FullTurnIsIdentity) {
  const Quaternion q = Quaternion::from_axis_angle({0, 1, 0}, 2 * kPi);
  expect_vec_near(q.rotate({1, 2, 3}), {1, 2, 3}, 1e-12);
}

TEST(QuaternionTest, EulerMatchesAxisComposition) {
  const double yaw = 0.3;
  const double pitch = -0.4;
  const double roll = 1.1;
  const Quaternion e = Quaternion::from_euler(yaw, pitch, roll);
  const Quaternion m = Quaternion::from_axis_angle({0, 0, 1}, yaw) *
                       Quaternion::from_axis_angle({0, 1, 0}, pitch) *
                       Quaternion::from_axis_angle({1, 0, 0}, roll);
  const Vec3 v{1, -2, 0.5};
  expect_vec_near(e.rotate(v), m.rotate(v), 1e-12);
}

TEST(QuaternionTest, EulerYawOnly) {
  const Quaternion q = Quaternion::from_euler(kPi / 2, 0, 0);
  expect_vec_near(q.rotate({1, 0, 0}), {0, 1, 0}, 1e-12);
}

}  // namespace
