// End-to-end observability of the serving stack: a traced concurrent run
// must export a structurally valid Chrome trace whose request flows span
// the submitter and worker threads, the trace's kernel totals must agree
// with the service's own TimingBreakdown accounting, the Prometheus scrape
// must expose every family the CI step requires, and shedding must keep
// deadline-expiry attribution (the stage="shed" satellite).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "support/error.h"
#include "support/rng.h"
#include "trace/chrome_trace.h"
#include "trace/json_lite.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace {

using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::serve::FrameService;
using starsim::serve::FrameServiceOptions;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::RequestPriority;
using starsim::serve::ServiceStats;
namespace trace = starsim::trace;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 10;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

struct TracedRun {
  std::string json;
  ServiceStats stats;
  std::string scrape;
};

/// Drive a traced multi-client load through a 2-worker service with the
/// simulator pinned to kParallel (one modeled kernel launch per frame, so
/// the trace/breakdown comparison has no simulator-choice noise).
TracedRun run_traced_service(int clients, std::size_t frames) {
  FrameServiceOptions options;
  options.workers = 2;
  options.max_batch_size = 4;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  trace::TraceRecorder::instance().start();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&service, c, frames] {
      std::vector<std::future<RenderResponse>> futures;
      for (std::size_t i = 0; i < frames; ++i) {
        RenderRequest request;
        request.scene = small_scene();
        request.stars =
            random_stars(1000 + static_cast<std::uint64_t>(c) * frames + i,
                         24);
        request.simulator = SimulatorKind::kParallel;
        futures.push_back(service.submit(std::move(request)));
      }
      for (auto& future : futures) (void)future.get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  service.stop();  // joins workers: every span and flow is closed
  trace::TraceRecorder::instance().stop();

  TracedRun run;
  run.json = trace::to_chrome_json(trace::TraceRecorder::instance().snapshot());
  trace::TraceRecorder::instance().clear();
  run.stats = service.stats();
  run.scrape = service.scrape_metrics();
  return run;
}

TEST(ServeObservability, TracedRunExportsValidCrossThreadTrace) {
  const TracedRun run = run_traced_service(3, 4);
  EXPECT_EQ(run.stats.completed, 12u);

  const trace::TraceCheck check = trace::validate_chrome_trace(run.json);
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_EQ(check.begin_events, check.end_events);
  // One flow per admitted request, each stitched from the submitting client
  // thread to the worker that rendered it.
  EXPECT_EQ(check.flow_ids, 12u);
  EXPECT_GE(check.cross_thread_flows, 1u);
  EXPECT_GE(check.threads, 2u);
  // All three layers contributed events.
  EXPECT_TRUE(check.categories.contains("serve"));
  EXPECT_TRUE(check.categories.contains("starsim"));
  EXPECT_TRUE(check.categories.contains("gpusim"));
  // The load-bearing span names are present.
  for (const char* name :
       {"submit", "render_batch", "render", "kernel_launch", "frame_upload",
        "readback"}) {
    EXPECT_NE(run.json.find(name), std::string::npos) << name;
  }
}

TEST(ServeObservability, TraceKernelTotalsMatchServiceBreakdown) {
  const TracedRun run = run_traced_service(2, 4);
  ASSERT_GT(run.stats.render_kernel_s, 0.0);

  // Sum the modeled kernel seconds the gpusim layer attached to every
  // kernel_launch slice (args ride on the E event).
  double traced_kernel_s = 0.0;
  std::size_t launches = 0;
  const trace::JsonValue document = trace::parse_json(run.json);
  const trace::JsonValue* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const trace::JsonValue& event : events->as_array()) {
    const trace::JsonValue* ph = event.find("ph");
    const trace::JsonValue* name = event.find("name");
    if (ph == nullptr || name == nullptr || ph->as_string() != "E" ||
        name->as_string() != "kernel_launch") {
      continue;
    }
    const trace::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    const trace::JsonValue* kernel_s = args->find("kernel_s");
    ASSERT_NE(kernel_s, nullptr);
    traced_kernel_s += kernel_s->as_number();
    launches += 1;
  }
  ASSERT_GT(launches, 0u);

  // The trace and ServiceStats draw from the same perf model, so the totals
  // must agree within the acceptance criterion's 5%.
  const double relative_error =
      std::fabs(traced_kernel_s - run.stats.render_kernel_s) /
      run.stats.render_kernel_s;
  EXPECT_LE(relative_error, 0.05)
      << "trace " << traced_kernel_s << " s vs breakdown "
      << run.stats.render_kernel_s << " s";
}

TEST(ServeObservability, ScrapeExposesRequiredFamilies) {
  const TracedRun run = run_traced_service(2, 2);
  const std::vector<std::string> required = {
      // The CI trace-check set:
      "starsim_serve_queue_depth",
      "starsim_serve_batch_size",
      "starsim_serve_render_seconds_total",
      "starsim_serve_cache_hits_total",
      "starsim_serve_sanitizer_findings_total",
      // One per remaining subsystem the scrape unifies:
      "starsim_serve_requests_total",
      "starsim_serve_deadline_expired_total",
      "starsim_serve_shed_total",
      "starsim_serve_latency_seconds",
      "starsim_serve_batches_total",
      "starsim_gpusim_kernel_work_total",
      "starsim_serve_workers",
      "starsim_serve_throughput_rps",
      // The auto-scheduler families (docs/scheduling.md):
      "starsim_sched_cache_events_total",
      "starsim_sched_tuner_invocations_total",
      "starsim_sched_candidates_evaluated_total",
      "starsim_sched_overrides_total",
      "starsim_sched_fallbacks_total",
      "starsim_sched_modeled_seconds_total",
      "starsim_sched_modeled_speedup",
  };
  const std::vector<std::string> problems =
      trace::check_prometheus(run.scrape, required);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  EXPECT_NE(run.scrape.find("starsim_serve_requests_total{outcome="
                            "\"completed\"} 4"),
            std::string::npos)
      << run.scrape;
  EXPECT_NE(run.scrape.find("starsim_gpusim_kernel_work_total{counter="
                            "\"flops\"}"),
            std::string::npos);
  EXPECT_NE(run.scrape.find("starsim_sched_cache_events_total{event=\"hit\"}"),
            std::string::npos)
      << run.scrape;
  EXPECT_NE(run.scrape.find(
                "starsim_sched_modeled_seconds_total{schedule=\"tuned\"}"),
            std::string::npos);
}

TEST(ServeObservability, ShedKeepsDeadlineExpiryAttribution) {
  // A 0-worker service admits but never renders: the low-priority request
  // sits in the 1-slot queue past its deadline until a high-priority
  // admission displaces it. Without the shed-stage attribution the expiry
  // evidence would vanish — the request counts as shed, and no expired_*
  // stage records that its budget was blown while queued.
  FrameServiceOptions options;
  options.workers = 0;
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  trace::TraceRecorder::instance().start();
  RenderRequest low;
  low.scene = small_scene();
  low.stars = random_stars(7, 8);
  low.simulator = SimulatorKind::kSequential;
  low.priority = RequestPriority::kLow;
  low.deadline_s = 0.01;
  std::future<RenderResponse> low_future = service.submit(std::move(low));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  RenderRequest high;
  high.scene = small_scene();
  high.stars = random_stars(8, 8);
  high.simulator = SimulatorKind::kSequential;
  high.priority = RequestPriority::kHigh;
  auto high_future = service.try_submit(std::move(high));
  ASSERT_TRUE(high_future.has_value());
  EXPECT_THROW((void)low_future.get(), starsim::support::OverloadShedError);

  service.stop();  // fails the queued high request (no workers exist)
  EXPECT_THROW((void)high_future->get(), starsim::support::Error);
  trace::TraceRecorder::instance().stop();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_expired, 1u);
  EXPECT_EQ(stats.shed_by_priority[0], 1u);  // band 0 = low
  EXPECT_EQ(stats.shed_by_priority[2], 0u);
  EXPECT_EQ(stats.in_flight(), 0u);

  const std::string scrape = service.scrape_metrics();
  EXPECT_NE(scrape.find("starsim_serve_deadline_expired_total{stage="
                        "\"shed\"} 1"),
            std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("starsim_serve_shed_total{priority=\"low\"} 1"),
            std::string::npos);

  // Both request flows terminated despite neither being rendered: the shed
  // path ended the low flow, stop()'s orphan sweep ended the high flow.
  const trace::TraceCheck check = trace::validate_chrome_trace(
      trace::to_chrome_json(trace::TraceRecorder::instance().snapshot()));
  trace::TraceRecorder::instance().clear();
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_EQ(check.flow_ids, 2u);
}

}  // namespace
