// Fleet chaos harness, extending tests/test_serve_chaos.cpp one level up:
// shards die and sicken mid-run while concurrent submitters keep pushing.
//
// The fleet contract mirrors the service contract: every admitted future
// resolves (frame or typed error, never a hang), every served frame is
// bit-identical to a direct render by the simulator that executed it —
// through every failover and hedge path — and the health ladder
// (breaker -> quarantine -> probe -> reinstate) keeps the fleet serving
// without a restart.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/fault_injector.h"
#include "imageio/image.h"
#include "serve/fingerprint.h"
#include "starsim/attitude.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
namespace fleet = starsim::fleet;
using starsim::OpenMpSimulator;
using starsim::ParallelSimulator;
using starsim::Quaternion;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::ImageF;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::RequestPriority;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 10;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest pinned_request(const SceneConfig& scene, const StarField& stars,
                             SimulatorKind kind) {
  RenderRequest request;
  request.scene = scene;
  request.stars = stars;
  request.simulator = kind;
  return request;
}

/// Direct renders of every field by every simulator a resilient kParallel
/// worker can degrade to — the bit-identity oracle for frames served
/// through any shard on any failover path.
struct ReferenceSet {
  std::vector<ImageF> parallel;
  std::vector<ImageF> cpu_parallel;
  std::vector<ImageF> sequential;

  explicit ReferenceSet(const std::vector<StarField>& fields) {
    OpenMpSimulator omp;
    SequentialSimulator seq;
    for (const StarField& stars : fields) {
      gs::Device device(gs::DeviceSpec::gtx480());
      parallel.push_back(
          ParallelSimulator(device).simulate(small_scene(), stars).image);
      cpu_parallel.push_back(omp.simulate(small_scene(), stars).image);
      sequential.push_back(seq.simulate(small_scene(), stars).image);
    }
  }

  [[nodiscard]] const ImageF& image(SimulatorKind kind, std::size_t i) const {
    switch (kind) {
      case SimulatorKind::kParallel: return parallel[i];
      case SimulatorKind::kCpuParallel: return cpu_parallel[i];
      case SimulatorKind::kSequential: return sequential[i];
      default: ADD_FAILURE() << "unexpected executed kind"; return parallel[i];
    }
  }
};

// --- The acceptance scenario: one shard killed, one quarantined, under
// --- fault injection, with concurrent submitters --------------------------

TEST(FleetChaos, KillAndQuarantineMidRunLeaveNoStuckFutures) {
  constexpr int kSubmitters = 3;
  constexpr std::size_t kFields = 8;
  constexpr std::size_t kWaves = 2;  // kill + quarantine between the waves

  std::vector<StarField> fields;
  for (std::size_t i = 0; i < kFields; ++i) {
    fields.push_back(random_stars(9000 + i, 35));
  }
  const ReferenceSet references(fields);

  fleet::FleetOptions options;
  options.shards = 4;
  options.replicas = 2;
  options.router_threads = 3;
  options.probe_after_ms = 1.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.shard.worker.resilient = true;
  options.shard.worker.fault_policy = gs::FaultPolicy::chaos(
      /*rate=*/0.10, /*lost_rate=*/0.20, /*seed=*/4242);
  fleet::ShardRouter router(options);

  struct Submitted {
    std::size_t field = 0;
    bool pre_expired = false;
    std::future<RenderResponse> future;
  };
  std::vector<std::vector<Submitted>> per_thread(kSubmitters);

  const auto submit_wave = [&](std::size_t wave) {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t, wave] {
        for (std::size_t i = 0; i < kFields; ++i) {
          RenderRequest request = pinned_request(
              small_scene(), fields[i], SimulatorKind::kParallel);
          request.priority = static_cast<RequestPriority>(i % 3);
          Submitted entry;
          entry.field = i;
          entry.pre_expired = (i + wave) % 6 == 5;
          if (entry.pre_expired) {
            request.deadline_s = 0.0;
          } else if (i % 2 == 0) {
            request.deadline_s = 30.0;  // generous: exercised, never missed
          }
          entry.future = router.submit(std::move(request));
          per_thread[static_cast<std::size_t>(t)].push_back(std::move(entry));
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  };

  submit_wave(0);
  // Mid-run: one shard dies outright, another is declared suspect. The
  // second wave must keep completing through the survivors.
  router.kill_shard(0);
  router.quarantine_shard(1);
  submit_wave(1);

  std::uint64_t frames = 0;
  std::uint64_t pre_expired = 0;
  std::uint64_t typed_errors = 0;
  for (auto& thread_entries : per_thread) {
    for (Submitted& entry : thread_entries) {
      ASSERT_TRUE(entry.future.valid());
      try {
        const RenderResponse response = entry.future.get();
        EXPECT_FALSE(entry.pre_expired);
        ASSERT_NE(response.result, nullptr);
        EXPECT_EQ(max_abs_difference(
                      response.result->image,
                      references.image(response.simulator, entry.field)),
                  0.0);
        EXPECT_EQ(response.degraded,
                  response.simulator != SimulatorKind::kParallel);
        ++frames;
      } catch (const starsim::support::DeadlineExceededError&) {
        EXPECT_TRUE(entry.pre_expired);
        ++pre_expired;
      } catch (const starsim::support::Error&) {
        // A typed fleet/serve error (shed, shard down) is a clean
        // resolution; a hang or a foreign exception is the failure mode.
        ++typed_errors;
      }
    }
  }

  router.stop();
  const fleet::FleetStats stats = router.stats();
  constexpr std::uint64_t kTotal = kSubmitters * kFields * kWaves;
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(frames + pre_expired + typed_errors, kTotal);
  EXPECT_EQ(stats.completed, frames);
  EXPECT_EQ(stats.failed, pre_expired + typed_errors);
  EXPECT_EQ(stats.in_flight(), 0u) << "stuck futures after quiesce";
  EXPECT_GE(stats.expired_router, pre_expired);
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kDown);
  EXPECT_GE(stats.quarantines, 1u);  // at least the forced one

  // Most of the traffic must have survived the kill + quarantine.
  EXPECT_GT(frames, kTotal / 2);
}

// --- Scripted health ladder: breaker -> quarantine -> probe -> reinstate --

TEST(FleetChaos, BreakerTripsQuarantineAndProbeReinstates) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.router_threads = 1;  // serialize routing: exact ladder order
  options.breaker_window = 4;
  options.breaker_min_samples = 2;
  options.breaker_error_rate = 0.5;
  options.probe_after_ms = 1.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  fleet::ShardRouter router(options);

  // An attitude-driven request (no stars) against a catalog-less service
  // fails shard admission deterministically — every attempt on every
  // replica errors, feeding the breaker without involving devices or
  // supervision.
  const StarField stars = random_stars(11, 20);
  for (int i = 0; i < 4; ++i) {
    RenderRequest bad =
        pinned_request(small_scene(), StarField{}, SimulatorKind::kParallel);
    bad.attitude = Quaternion(1.0, 0.0, 0.0, 0.0);
    EXPECT_THROW((void)router.render(std::move(bad)),
                 starsim::support::PreconditionError);
  }
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kQuarantined);
  EXPECT_EQ(router.shard_state(1), fleet::ShardState::kQuarantined);

  {
    const fleet::FleetStats mid = router.stats();
    EXPECT_GE(mid.quarantines, 2u);
    EXPECT_GE(mid.failovers, 1u);
    EXPECT_EQ(mid.failover_successes, 0u);
  }

  // Let the quarantine dwell elapse, then send healthy traffic: routing
  // publishes it as the probe template (off the routing path, so the
  // request itself is served immediately by the quarantined replicas),
  // the probe thread shadow-probes both shards with it, the probes pass,
  // and the fleet reinstates itself.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const RenderResponse response = router.render(
      pinned_request(small_scene(), stars, SimulatorKind::kParallel));
  ASSERT_NE(response.result, nullptr);

  // Probes are asynchronous; wait (bounded) for the ladder to climb back.
  const auto reinstate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((router.shard_state(0) != fleet::ShardState::kHealthy ||
          router.shard_state(1) != fleet::ShardState::kHealthy) &&
         std::chrono::steady_clock::now() < reinstate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kHealthy);
  EXPECT_EQ(router.shard_state(1), fleet::ShardState::kHealthy);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_GE(stats.probes, 2u);
  EXPECT_EQ(stats.reinstates, 2u);
  EXPECT_EQ(stats.in_flight(), 0u);

  gs::Device device(gs::DeviceSpec::gtx480());
  const ImageF direct =
      ParallelSimulator(device).simulate(small_scene(), stars).image;
  EXPECT_EQ(max_abs_difference(response.result->image, direct), 0.0);
}

// --- Hedging: a straggler replica must not own the latency tail ----------

TEST(FleetChaos, HedgeWinsAgainstAStragglerReplica) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.router_threads = 2;
  options.hedge_ms = 5.0;  // fixed trigger: deterministic hedge launch
  options.straggler_shard = 0;
  options.straggler_ms = 120.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  fleet::ShardRouter router(options);

  // Find a scene whose *primary* replica is the straggler, so the hedge
  // path (not plain routing) is what serves it. psf_sigma perturbations
  // move the scene fingerprint around the ring without changing the
  // render meaningfully.
  SceneConfig scene = small_scene();
  for (int k = 0; k < 4096; ++k) {
    scene.psf_sigma = 1.0 + 1e-9 * k;
    if (router.replicas_for(
            starsim::serve::fingerprint_scene(scene))[0] == 0) {
      break;
    }
  }
  ASSERT_EQ(router.replicas_for(starsim::serve::fingerprint_scene(scene))[0],
            0)
      << "no probe scene landed on the straggler";

  const StarField stars = random_stars(21, 30);
  gs::Device device(gs::DeviceSpec::gtx480());
  const ImageF direct = ParallelSimulator(device).simulate(scene, stars).image;

  constexpr int kRequests = 3;
  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const RenderResponse response =
        router.render(pinned_request(scene, stars, SimulatorKind::kParallel));
    ASSERT_NE(response.result, nullptr);
    EXPECT_EQ(max_abs_difference(response.result->image, direct), 0.0);
    EXPECT_FALSE(response.degraded);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_GE(stats.hedges_launched, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.hedges_won, 1u);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.in_flight(), 0u);
  // Three renders against a 120 ms straggler primary: unhedged would cost
  // >= 360 ms; the hedge must reclaim most of it.
  EXPECT_LT(elapsed_s, 0.300) << "hedging did not beat the straggler";
}

// --- Kill during drain: admitted work survives the shard's death ----------

TEST(FleetChaos, KilledShardDrainsAdmittedWorkBeforeGoingDark) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 1;  // no failover: the kill itself must be graceful
  options.router_threads = 2;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  fleet::ShardRouter router(options);

  std::vector<std::future<RenderResponse>> futures;
  std::vector<StarField> fields;
  for (std::uint64_t i = 0; i < 8; ++i) {
    fields.push_back(random_stars(500 + i, 25));
    futures.push_back(router.submit(pinned_request(
        small_scene(), fields.back(), SimulatorKind::kParallel)));
  }
  router.kill_shard(1);

  std::uint64_t frames = 0;
  std::uint64_t down_errors = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const RenderResponse response = futures[i].get();
      ASSERT_NE(response.result, nullptr);
      gs::Device device(gs::DeviceSpec::gtx480());
      const ImageF direct =
          ParallelSimulator(device).simulate(small_scene(), fields[i]).image;
      EXPECT_EQ(max_abs_difference(response.result->image, direct), 0.0);
      ++frames;
    } catch (const starsim::support::Error&) {
      // Requests placed on the killed shard after its death resolve with a
      // typed error (down/shed) — never a hang.
      ++down_errors;
    }
  }

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(frames + down_errors, 8u);
  EXPECT_GE(frames, 1u) << "both shards' work vanished";
}

// --- The supervision ladder on loopback shards -----------------------------
//
// Same ladder the process fleet exercises with real SIGKILLs
// (tests/test_fleet_proc.cpp), driven here through the in-process
// transport: crash -> detect -> respawn -> quarantine -> probe ->
// reinstate, no restart.

TEST(FleetChaos, CrashedLoopbackShardRespawnsAndReinstates) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.router_threads = 2;
  options.probe_after_ms = 1.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.supervise = true;
  options.supervision.poll_ms = 10.0;
  options.supervision.respawn_backoff_ms = 10.0;
  fleet::ShardRouter router(options);

  const StarField stars = random_stars(31, 20);
  (void)router.render(
      pinned_request(small_scene(), stars, SimulatorKind::kParallel));
  router.crash_shard(1);

  // First wait for the supervisor to notice the corpse (the state leaves
  // kHealthy only once detection fires), then drive traffic to carry the
  // fleet through respawn and the shadow probes that reinstate it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (router.stats().respawns_succeeded < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::uint64_t nonce = 0;
  while (router.shard_state(1) != fleet::ShardState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    try {
      RenderRequest request = pinned_request(
          small_scene(), random_stars(6000 + nonce, 15),
          SimulatorKind::kParallel);
      request.scene.psf_sigma = 0.8 + 0.01 * static_cast<double>(nonce % 64);
      ++nonce;
      (void)router.render(request);
    } catch (const starsim::support::Error&) {
      // Failovers during the window are fine; hangs are not.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router.shard_state(1), fleet::ShardState::kHealthy)
      << "the supervisor never reinstated the crashed loopback shard";

  // The respawned shard is a fresh service; frames stay bit-identical.
  const RenderResponse after = router.render(
      pinned_request(small_scene(), stars, SimulatorKind::kParallel));
  ASSERT_NE(after.result, nullptr);
  gs::Device device(gs::DeviceSpec::gtx480());
  EXPECT_EQ(max_abs_difference(
                after.result->image,
                ParallelSimulator(device).simulate(small_scene(), stars).image),
            0.0);

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_GE(stats.crashes_detected, 1u);
  EXPECT_GE(stats.respawns_succeeded, 1u);
  EXPECT_GE(stats.reinstates, 1u);
}

}  // namespace
