#include "starsim/lookup_table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "starsim/psf.h"
#include "support/error.h"

namespace {

using starsim::GaussianPsf;
using starsim::LookupTable;
using starsim::LookupTableOptions;
using starsim::SceneConfig;

SceneConfig scene_with(int roi_side, double sigma = 1.7) {
  SceneConfig scene;
  scene.roi_side = roi_side;
  scene.psf_sigma = sigma;
  return scene;
}

TEST(LookupTable, DefaultGeometryMatchesPaper) {
  // Magnitudes 0..15 at one bin per magnitude, ROI 10: 16 x 10 x 10 entries
  // (the Fig. 8 table; Table I prices its build at 0.71 ms).
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_EQ(table.magnitude_bins(), 15);  // ceil(15 * 1)
  EXPECT_EQ(table.roi_side(), 10);
  EXPECT_EQ(table.phases(), 1);
  EXPECT_EQ(table.width(), 10);
  EXPECT_EQ(table.height(), 150);
  EXPECT_EQ(table.entries(), 1500u);
  EXPECT_EQ(table.bytes(), 6000u);
}

TEST(LookupTable, FinerBinsMultiplyRows) {
  LookupTableOptions options;
  options.bins_per_magnitude = 4;
  const LookupTable table = LookupTable::build(scene_with(10), options);
  EXPECT_EQ(table.magnitude_bins(), 60);
  EXPECT_EQ(table.height(), 600);
}

TEST(LookupTable, SubpixelPhasesMultiplyRows) {
  LookupTableOptions options;
  options.subpixel_phases = 4;
  const LookupTable table = LookupTable::build(scene_with(6), options);
  EXPECT_EQ(table.phases(), 4);
  EXPECT_EQ(table.height(), 15 * 16 * 6);
}

TEST(LookupTable, ValuesAreBrightnessTimesPsf) {
  const SceneConfig scene = scene_with(10);
  const LookupTable table = LookupTable::build(scene);
  const GaussianPsf psf(scene.psf_sigma);
  const int margin = table.margin();
  for (int bin : {0, 3, 14}) {
    const double brightness =
        scene.brightness.brightness(table.bin_magnitude(bin));
    for (int row = 0; row < 10; ++row) {
      for (int col = 0; col < 10; ++col) {
        const double expected =
            brightness * psf.intensity_rate(col - margin, row - margin);
        ASSERT_NEAR(table.at(bin, 0, 0, row, col), expected,
                    std::abs(expected) * 1e-6 + 1e-12);
      }
    }
  }
}

TEST(LookupTable, PeakOfEachBinAtRoiCenter) {
  const LookupTable table = LookupTable::build(scene_with(9));
  const int center = table.margin();
  for (int bin = 0; bin < table.magnitude_bins(); ++bin) {
    const float peak = table.at(bin, 0, 0, center, center);
    for (int row = 0; row < 9; ++row) {
      for (int col = 0; col < 9; ++col) {
        ASSERT_LE(table.at(bin, 0, 0, row, col), peak);
      }
    }
  }
}

TEST(LookupTable, BrighterBinsHaveLargerValues) {
  const LookupTable table = LookupTable::build(scene_with(10));
  const int c = table.margin();
  for (int bin = 1; bin < table.magnitude_bins(); ++bin) {
    ASSERT_GT(table.at(bin - 1, 0, 0, c, c), table.at(bin, 0, 0, c, c));
  }
}

TEST(LookupTable, MagnitudeBinMappingAndClamping) {
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_EQ(table.magnitude_bin(0.0), 0);
  EXPECT_EQ(table.magnitude_bin(0.99), 0);
  EXPECT_EQ(table.magnitude_bin(1.0), 1);
  EXPECT_EQ(table.magnitude_bin(14.99), 14);
  EXPECT_EQ(table.magnitude_bin(-5.0), 0);    // clamped
  EXPECT_EQ(table.magnitude_bin(99.0), 14);   // clamped
}

TEST(LookupTable, BinMagnitudeIsBinCenter) {
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_DOUBLE_EQ(table.bin_magnitude(0), 0.5);
  EXPECT_DOUBLE_EQ(table.bin_magnitude(7), 7.5);
  EXPECT_THROW((void)table.bin_magnitude(15),
               starsim::support::PreconditionError);
}

TEST(LookupTable, PhaseOfSinglePhaseIsZero) {
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_EQ(table.phase_of(100.0f), 0);
  EXPECT_EQ(table.phase_of(100.49f), 0);
}

TEST(LookupTable, PhaseOfQuartersPixel) {
  LookupTableOptions options;
  options.subpixel_phases = 4;
  const LookupTable table = LookupTable::build(scene_with(6), options);
  // frac in [-0.5,-0.25) -> 0, [-0.25,0) -> 1, [0,0.25) -> 2, [0.25,0.5) -> 3
  EXPECT_EQ(table.phase_of(100.0f), 2);
  EXPECT_EQ(table.phase_of(100.3f), 3);
  EXPECT_EQ(table.phase_of(100.6f), 0);   // rounds to 101, frac -0.4
  EXPECT_EQ(table.phase_of(100.85f), 1);  // rounds to 101, frac -0.15
}

TEST(LookupTable, PhaseCentersTileThePixel) {
  LookupTableOptions options;
  options.subpixel_phases = 4;
  const LookupTable table = LookupTable::build(scene_with(6), options);
  EXPECT_DOUBLE_EQ(table.phase_center(0), -0.375);
  EXPECT_DOUBLE_EQ(table.phase_center(1), -0.125);
  EXPECT_DOUBLE_EQ(table.phase_center(2), 0.125);
  EXPECT_DOUBLE_EQ(table.phase_center(3), 0.375);
}

TEST(LookupTable, RowBaseLayoutIsDense) {
  LookupTableOptions options;
  options.subpixel_phases = 2;
  const LookupTable table = LookupTable::build(scene_with(6), options);
  // Rows advance by roi_side per (bin, phase_y, phase_x) tuple, phase_x
  // fastest.
  EXPECT_EQ(table.row_base(0, 0, 0), 0);
  EXPECT_EQ(table.row_base(0, 1, 0), 6);
  EXPECT_EQ(table.row_base(0, 0, 1), 12);
  EXPECT_EQ(table.row_base(0, 1, 1), 18);
  EXPECT_EQ(table.row_base(1, 0, 0), 24);
}

TEST(LookupTable, SubpixelEntriesShiftThePeak) {
  LookupTableOptions options;
  options.subpixel_phases = 4;
  const SceneConfig scene = scene_with(7, 1.0);
  const LookupTable table = LookupTable::build(scene, options);
  // Phase 3 centers the star at +0.375 px: the value right of center must
  // exceed the value left of center.
  const int c = table.margin();
  EXPECT_GT(table.at(0, 3, 2, c, c + 1), table.at(0, 3, 2, c, c - 1));
  // Phase 0 (-0.375 px): the opposite.
  EXPECT_LT(table.at(0, 0, 2, c, c + 1), table.at(0, 0, 2, c, c - 1));
}

TEST(LookupTable, BuildRecordsWallTime) {
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_GE(table.build_wall_s(), 0.0);
  EXPECT_LT(table.build_wall_s(), 5.0);
}

TEST(LookupTable, RejectsBadOptions) {
  LookupTableOptions options;
  options.bins_per_magnitude = 0;
  EXPECT_THROW((void)LookupTable::build(scene_with(10), options),
               starsim::support::PreconditionError);
  options.bins_per_magnitude = 1;
  options.subpixel_phases = 0;
  EXPECT_THROW((void)LookupTable::build(scene_with(10), options),
               starsim::support::PreconditionError);
}

TEST(LookupTable, AccessorValidatesRange) {
  const LookupTable table = LookupTable::build(scene_with(10));
  EXPECT_THROW((void)table.at(0, 0, 0, 10, 0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)table.at(99, 0, 0, 0, 0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)table.row_base(0, 1, 0),
               starsim::support::PreconditionError);
}

}  // namespace
