#include "serve/fingerprint.h"

#include <gtest/gtest.h>

#include "starsim/scene.h"
#include "starsim/star.h"

namespace {

using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::serve::fingerprint_request;
using starsim::serve::fingerprint_scene;

TEST(Fingerprint, SceneHashIsDeterministic) {
  const SceneConfig a;
  const SceneConfig b;
  EXPECT_EQ(fingerprint_scene(a), fingerprint_scene(b));
}

TEST(Fingerprint, EverySceneFieldChangesTheHash) {
  const SceneConfig base;
  const std::uint64_t h = fingerprint_scene(base);

  SceneConfig s = base;
  s.image_width = 512;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.image_height = 512;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.roi_side = 12;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.psf_sigma = 2.0;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.pixel_integration = !s.pixel_integration;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.brightness.proportion_factor = 500.0;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.brightness.magnitude_base = 2.0;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.magnitude_min = 1.0;
  EXPECT_NE(fingerprint_scene(s), h);
  s = base;
  s.magnitude_max = 10.0;
  EXPECT_NE(fingerprint_scene(s), h);
}

TEST(Fingerprint, WidthHeightSwapIsNotACollision) {
  SceneConfig a;
  a.image_width = 512;
  a.image_height = 1024;
  SceneConfig b;
  b.image_width = 1024;
  b.image_height = 512;
  EXPECT_NE(fingerprint_scene(a), fingerprint_scene(b));
}

TEST(Fingerprint, RequestHashCoversStarsAndSimulator) {
  const SceneConfig scene;
  StarField stars{Star{3.0f, 10.0f, 20.0f, 1.0f},
                  Star{5.0f, 30.0f, 40.0f, 1.0f}};
  const std::uint64_t h =
      fingerprint_request(scene, stars, SimulatorKind::kParallel);

  // Same inputs, same hash.
  EXPECT_EQ(fingerprint_request(scene, stars, SimulatorKind::kParallel), h);

  // Simulator kind is part of the identity (kernels differ numerically).
  EXPECT_NE(fingerprint_request(scene, stars, SimulatorKind::kAdaptive), h);

  // Any star perturbation changes the hash.
  StarField moved = stars;
  moved[1].x += 0.5f;
  EXPECT_NE(fingerprint_request(scene, moved, SimulatorKind::kParallel), h);

  // Star order matters (atomic accumulation order is part of the result
  // identity under the bit-identical contract).
  StarField swapped{stars[1], stars[0]};
  EXPECT_NE(fingerprint_request(scene, swapped, SimulatorKind::kParallel), h);

  // Star count matters even against an empty tail.
  StarField shorter{stars[0]};
  EXPECT_NE(fingerprint_request(scene, shorter, SimulatorKind::kParallel), h);
}

TEST(Fingerprint, EmptyFieldHashesDistinctFromSceneHash) {
  const SceneConfig scene;
  const StarField none;
  EXPECT_NE(fingerprint_request(scene, none, SimulatorKind::kSequential),
            fingerprint_scene(scene));
}

}  // namespace
