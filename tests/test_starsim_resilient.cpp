#include "starsim/resilient_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "gpusim/fault_injector.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::ResilienceReport;
using starsim::ResilientExecutor;
using starsim::RetryPolicy;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::Simulator;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::support::DeviceError;
using starsim::support::DeviceLostError;
using starsim::support::PreconditionError;
using starsim::support::TransferError;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 8;
  return scene;
}

StarField some_stars(std::size_t count = 50) {
  starsim::WorkloadConfig workload;
  workload.star_count = count;
  workload.image_width = 64;
  workload.image_height = 64;
  workload.seed = 7;
  return generate_stars(workload);
}

/// Test double: fails the first `failures` simulate() calls with a
/// configurable error, then behaves as a sequential simulator.
class FlakySimulator final : public Simulator {
 public:
  enum class Failure { kRetryableTransfer, kNonRetryableDevice, kDeviceLost };

  FlakySimulator(int failures, Failure mode)
      : failures_(failures), mode_(mode) {}

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kSequential;
  }
  [[nodiscard]] std::string_view name() const override { return "flaky"; }
  [[nodiscard]] int calls() const { return calls_; }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override {
    ++calls_;
    if (calls_ <= failures_) {
      switch (mode_) {
        case Failure::kRetryableTransfer:
          throw TransferError("synthetic checksum mismatch");
        case Failure::kNonRetryableDevice:
          throw DeviceError("synthetic hard failure", /*retryable=*/false);
        case Failure::kDeviceLost:
          throw DeviceLostError("synthetic device loss");
      }
    }
    return inner_.simulate(scene, stars);
  }

 private:
  int failures_;
  Failure mode_;
  int calls_ = 0;
  SequentialSimulator inner_;
};

std::vector<std::unique_ptr<Simulator>> chain_of(
    std::unique_ptr<Simulator> head) {
  std::vector<std::unique_ptr<Simulator>> chain;
  chain.push_back(std::move(head));
  return chain;
}

TEST(ResilientExecutor, RejectsEmptyChain) {
  EXPECT_THROW(
      ResilientExecutor(std::vector<std::unique_ptr<Simulator>>{}),
      PreconditionError);
}

TEST(ResilientExecutor, RejectsNullChainEntry) {
  std::vector<std::unique_ptr<Simulator>> chain;
  chain.push_back(nullptr);
  EXPECT_THROW(ResilientExecutor{std::move(chain)}, PreconditionError);
}

TEST(ResilientExecutor, RejectsBadPolicy) {
  RetryPolicy policy;
  policy.max_retries = -1;
  EXPECT_THROW(
      ResilientExecutor(chain_of(std::make_unique<SequentialSimulator>()),
                        policy),
      PreconditionError);
}

TEST(ResilientExecutor, CleanRunIsSingleAttempt) {
  ResilientExecutor executor(
      chain_of(std::make_unique<SequentialSimulator>()));
  const SimulationResult result =
      executor.simulate(small_scene(), some_stars());
  SequentialSimulator reference;
  const auto expected = reference.simulate(small_scene(), some_stars()).image;
  EXPECT_EQ(max_abs_difference(expected, result.image), 0.0);
  const ResilienceReport& report = executor.last_report();
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_FALSE(report.degraded);
  EXPECT_FALSE(report.recovered());
  EXPECT_EQ(report.final_simulator, "sequential");
}

TEST(ResilientExecutor, RetriesTransientFaultsWithExponentialBackoff) {
  auto flaky = std::make_unique<FlakySimulator>(
      2, FlakySimulator::Failure::kRetryableTransfer);
  FlakySimulator* probe = flaky.get();
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_s = 1e-3;
  policy.backoff_multiplier = 2.0;
  ResilientExecutor executor(chain_of(std::move(flaky)), policy);
  const SimulationResult result =
      executor.simulate(small_scene(), some_stars());
  EXPECT_EQ(probe->calls(), 3);

  SequentialSimulator reference;
  const auto expected = reference.simulate(small_scene(), some_stars()).image;
  EXPECT_EQ(max_abs_difference(expected, result.image), 0.0)
      << "recovered frame must be bit-identical to the fault-free run";

  const ResilienceReport& report = executor.last_report();
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_TRUE(report.recovered());
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.faults.size(), 2u);
  EXPECT_DOUBLE_EQ(report.faults[0].backoff_s, 1e-3);
  EXPECT_DOUBLE_EQ(report.faults[1].backoff_s, 2e-3);
  EXPECT_DOUBLE_EQ(report.backoff_total_s, 3e-3);
}

TEST(ResilientExecutor, ExhaustedRetriesDegradeToNextRung) {
  std::vector<std::unique_ptr<Simulator>> chain;
  chain.push_back(std::make_unique<FlakySimulator>(
      100, FlakySimulator::Failure::kRetryableTransfer));
  chain.push_back(std::make_unique<SequentialSimulator>());
  RetryPolicy policy;
  policy.max_retries = 2;
  ResilientExecutor executor(std::move(chain), policy);
  const SimulationResult result =
      executor.simulate(small_scene(), some_stars());
  EXPECT_GT(result.image.pixel_count(), 0u);
  const ResilienceReport& report = executor.last_report();
  EXPECT_EQ(report.attempts, 4);  // 3 on the flaky rung + 1 sequential
  EXPECT_EQ(report.fallbacks, 1);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.final_simulator, "sequential");
}

TEST(ResilientExecutor, NonRetryableFaultSkipsRetriesEntirely) {
  std::vector<std::unique_ptr<Simulator>> chain;
  auto flaky = std::make_unique<FlakySimulator>(
      100, FlakySimulator::Failure::kNonRetryableDevice);
  FlakySimulator* probe = flaky.get();
  chain.push_back(std::move(flaky));
  chain.push_back(std::make_unique<SequentialSimulator>());
  ResilientExecutor executor(std::move(chain));
  (void)executor.simulate(small_scene(), some_stars());
  EXPECT_EQ(probe->calls(), 1) << "non-retryable errors must not be retried";
  EXPECT_EQ(executor.last_report().fallbacks, 1);
}

TEST(ResilientExecutor, DeviceLossDegradesWithoutRetry) {
  std::vector<std::unique_ptr<Simulator>> chain;
  auto flaky = std::make_unique<FlakySimulator>(
      100, FlakySimulator::Failure::kDeviceLost);
  FlakySimulator* probe = flaky.get();
  chain.push_back(std::move(flaky));
  chain.push_back(std::make_unique<SequentialSimulator>());
  ResilientExecutor executor(std::move(chain));
  (void)executor.simulate(small_scene(), some_stars());
  EXPECT_EQ(probe->calls(), 1);
  EXPECT_TRUE(executor.last_report().degraded);
}

TEST(ResilientExecutor, AllRungsFailingRethrows) {
  RetryPolicy policy;
  policy.max_retries = 1;
  ResilientExecutor executor(
      chain_of(std::make_unique<FlakySimulator>(
          100, FlakySimulator::Failure::kRetryableTransfer)),
      policy);
  EXPECT_THROW((void)executor.simulate(small_scene(), some_stars()),
               TransferError);
}

TEST(ResilientExecutor, PreconditionErrorsAreNeverSwallowed) {
  ResilientExecutor executor(
      chain_of(std::make_unique<SequentialSimulator>()));
  SceneConfig bad = small_scene();
  bad.image_width = 0;
  EXPECT_THROW((void)executor.simulate(bad, some_stars()), PreconditionError);
}

TEST(ResilientExecutor, DefaultChainSpansAdaptiveToSequential) {
  gs::Device device(gs::DeviceSpec::gtx480());
  ResilientExecutor executor =
      ResilientExecutor::with_default_chain(device);
  EXPECT_EQ(executor.chain_length(), 4u);
  EXPECT_EQ(executor.kind(), SimulatorKind::kAdaptive);
  EXPECT_EQ(executor.name(), "resilient");
  (void)executor.simulate(small_scene(), some_stars());
  EXPECT_EQ(executor.last_report().final_simulator, "adaptive");
}

TEST(ResilientExecutor, RecoversInjectedTransientFaultsBitIdentically) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const StarField stars = some_stars(200);
  starsim::ParallelSimulator reference(device);
  const auto expected = reference.simulate(small_scene(), stars).image;

  gs::FaultInjector injector(gs::FaultPolicy::transient(0.1, 2012));
  device.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_retries = 5;
  ResilientExecutor executor(
      chain_of(std::make_unique<starsim::ParallelSimulator>(device)), policy);
  int recovered = 0;
  for (int run = 0; run < 20; ++run) {
    const SimulationResult result = executor.simulate(small_scene(), stars);
    EXPECT_EQ(max_abs_difference(expected, result.image), 0.0)
        << "run " << run << " diverged from the fault-free image";
    if (executor.last_report().recovered()) ++recovered;
  }
  device.set_fault_injector(nullptr);
  EXPECT_GT(recovered, 0) << "expected at least one injected fault in "
                             "20 runs at a 10% rate";
}

TEST(ResilientExecutor, PersistentWatchdogFaultDegradesToCpu) {
  gs::Device device(gs::DeviceSpec::gtx480());
  gs::FaultPolicy policy;
  policy.watchdog_budget_s = 1e-12;  // every kernel overruns the watchdog
  gs::FaultInjector injector(policy);
  device.set_fault_injector(&injector);
  ResilientExecutor executor = ResilientExecutor::with_default_chain(device);
  const StarField stars = some_stars();
  const SimulationResult result = executor.simulate(small_scene(), stars);
  device.set_fault_injector(nullptr);

  const ResilienceReport& report = executor.last_report();
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.final_simulator, "cpu-parallel");
  EXPECT_EQ(report.fallbacks, 2);  // adaptive and parallel both abandoned

  SequentialSimulator cpu;
  const auto expected = cpu.simulate(small_scene(), stars).image;
  double peak = 0.0;
  for (float v : expected.pixels()) {
    peak = std::max(peak, static_cast<double>(v));
  }
  EXPECT_LT(max_abs_difference(expected, result.image) / peak, 1e-5);
}

}  // namespace
