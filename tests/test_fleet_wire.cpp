// fleet::wire round-trip coverage: requests, responses and typed errors
// must cross the shard boundary bit-exactly, and malformed frames must be
// rejected (WireFormatError) instead of misread.
#include "fleet/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "imageio/image.h"
#include "serve/fingerprint.h"
#include "starsim/attitude.h"
#include "starsim/parallel_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace fleet = starsim::fleet;
namespace support = starsim::support;
using starsim::Quaternion;
using starsim::SceneConfig;
using starsim::SimulationResult;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::RequestPriority;

SceneConfig full_scene() {
  SceneConfig scene;
  scene.image_width = 96;
  scene.image_height = 64;
  scene.roi_side = 12;
  scene.psf_sigma = 0.87;
  scene.pixel_integration = true;
  scene.brightness.proportion_factor = 1234.5;
  scene.brightness.magnitude_base = 2.511886;
  scene.magnitude_min = 1.25;
  scene.magnitude_max = 7.75;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    star.weight = static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest full_request() {
  RenderRequest request;
  request.scene = full_scene();
  request.stars = random_stars(77, 25);
  request.attitude = Quaternion(0.5, -0.25, 0.125, 0.8125);
  request.simulator = SimulatorKind::kParallel;
  request.priority = RequestPriority::kHigh;
  request.deadline_s = 2.5;
  request.sanitize = true;
  return request;
}

TEST(FleetWire, RequestRoundTripsEveryField) {
  const RenderRequest original = full_request();
  const fleet::WireBuffer frame = fleet::encode_request(original);
  const RenderRequest decoded = fleet::decode_request(frame);

  EXPECT_EQ(decoded.scene.image_width, original.scene.image_width);
  EXPECT_EQ(decoded.scene.image_height, original.scene.image_height);
  EXPECT_EQ(decoded.scene.roi_side, original.scene.roi_side);
  EXPECT_EQ(decoded.scene.psf_sigma, original.scene.psf_sigma);
  EXPECT_EQ(decoded.scene.pixel_integration, original.scene.pixel_integration);
  EXPECT_EQ(decoded.scene.brightness.proportion_factor,
            original.scene.brightness.proportion_factor);
  EXPECT_EQ(decoded.scene.brightness.magnitude_base,
            original.scene.brightness.magnitude_base);
  EXPECT_EQ(decoded.scene.magnitude_min, original.scene.magnitude_min);
  EXPECT_EQ(decoded.scene.magnitude_max, original.scene.magnitude_max);

  ASSERT_EQ(decoded.stars.size(), original.stars.size());
  for (std::size_t i = 0; i < original.stars.size(); ++i) {
    EXPECT_EQ(decoded.stars[i].magnitude, original.stars[i].magnitude);
    EXPECT_EQ(decoded.stars[i].x, original.stars[i].x);
    EXPECT_EQ(decoded.stars[i].y, original.stars[i].y);
    EXPECT_EQ(decoded.stars[i].weight, original.stars[i].weight);
  }

  ASSERT_TRUE(decoded.attitude.has_value());
  EXPECT_EQ(decoded.attitude->w(), original.attitude->w());
  EXPECT_EQ(decoded.attitude->x(), original.attitude->x());
  EXPECT_EQ(decoded.attitude->y(), original.attitude->y());
  EXPECT_EQ(decoded.attitude->z(), original.attitude->z());

  ASSERT_TRUE(decoded.simulator.has_value());
  EXPECT_EQ(*decoded.simulator, SimulatorKind::kParallel);
  EXPECT_EQ(decoded.priority, RequestPriority::kHigh);
  ASSERT_TRUE(decoded.deadline_s.has_value());
  EXPECT_EQ(*decoded.deadline_s, 2.5);
  EXPECT_TRUE(decoded.sanitize);
}

TEST(FleetWire, OptionalFieldsStayAbsent) {
  RenderRequest original;
  original.scene = full_scene();
  original.stars = random_stars(5, 3);
  const RenderRequest decoded =
      fleet::decode_request(fleet::encode_request(original));
  EXPECT_FALSE(decoded.attitude.has_value());
  EXPECT_FALSE(decoded.simulator.has_value());
  EXPECT_FALSE(decoded.deadline_s.has_value());
  EXPECT_FALSE(decoded.sanitize);
  EXPECT_EQ(decoded.priority, RequestPriority::kNormal);
}

// The satellite's headline claim: the fingerprint AND the rendered frame
// are bit-identical across the wire boundary — a shard that decodes a
// request renders exactly the frame the router's client asked for.
TEST(FleetWire, FingerprintAndRenderedFrameSurviveTheBoundary) {
  const RenderRequest original = full_request();
  const RenderRequest decoded =
      fleet::decode_request(fleet::encode_request(original));

  EXPECT_EQ(starsim::serve::fingerprint_scene(decoded.scene),
            starsim::serve::fingerprint_scene(original.scene));
  EXPECT_EQ(starsim::serve::fingerprint_request(decoded.scene, decoded.stars,
                                                *decoded.simulator),
            starsim::serve::fingerprint_request(original.scene, original.stars,
                                                *original.simulator));

  namespace gs = starsim::gpusim;
  gs::Device device_a(gs::DeviceSpec::gtx480());
  gs::Device device_b(gs::DeviceSpec::gtx480());
  const SimulationResult direct = starsim::ParallelSimulator(device_a).simulate(
      original.scene, original.stars);
  const SimulationResult via_wire =
      starsim::ParallelSimulator(device_b).simulate(decoded.scene,
                                                    decoded.stars);
  EXPECT_EQ(max_abs_difference(direct.image, via_wire.image), 0.0);
}

TEST(FleetWire, ResponseRoundTripsPixelsTimingAndCounters) {
  namespace gs = starsim::gpusim;
  gs::Device device(gs::DeviceSpec::gtx480());
  const RenderRequest request = full_request();
  SimulationResult result =
      starsim::ParallelSimulator(device).simulate(request.scene, request.stars);

  RenderResponse response;
  response.result = std::make_shared<const SimulationResult>(std::move(result));
  response.simulator = SimulatorKind::kParallel;
  response.latency = {0.001, 0.002, 0.003, 0.004, 0.005, 0.015};
  response.fingerprint = starsim::serve::fingerprint_request(
      request.scene, request.stars, SimulatorKind::kParallel);
  response.batch_size = 3;
  response.from_cache = false;
  response.degraded = false;

  const fleet::WireBuffer frame = fleet::encode_response(response);
  const RenderResponse decoded = fleet::decode_reply(frame);

  ASSERT_NE(decoded.result, nullptr);
  EXPECT_EQ(max_abs_difference(decoded.result->image, response.result->image),
            0.0);
  EXPECT_EQ(decoded.result->timing.kernel_s, response.result->timing.kernel_s);
  EXPECT_EQ(decoded.result->timing.wall_s, response.result->timing.wall_s);
  EXPECT_EQ(decoded.result->timing.counters.flops,
            response.result->timing.counters.flops);
  EXPECT_EQ(decoded.result->timing.counters.global_bytes_read,
            response.result->timing.counters.global_bytes_read);
  EXPECT_EQ(decoded.result->timing.counters.texture_fetches,
            response.result->timing.counters.texture_fetches);
  EXPECT_EQ(decoded.simulator, SimulatorKind::kParallel);
  EXPECT_EQ(decoded.latency.queue_wait_s, 0.001);
  EXPECT_EQ(decoded.latency.total_s, 0.015);
  EXPECT_EQ(decoded.fingerprint, response.fingerprint);
  EXPECT_EQ(decoded.batch_size, 3u);
  EXPECT_FALSE(decoded.from_cache);
  EXPECT_FALSE(decoded.degraded);
}

// Every taxonomy member must decode back into its own class with its
// retryable flag intact — router-side catch clauses depend on it.
template <typename E>
void expect_error_round_trip(const E& error, bool retryable) {
  const fleet::WireBuffer frame = fleet::encode_error(error);
  EXPECT_TRUE(fleet::reply_is_error(frame));
  try {
    (void)fleet::decode_reply(frame);
    FAIL() << "decode_reply did not rethrow";
  } catch (const E& decoded) {
    EXPECT_STREQ(decoded.what(), error.what());
    EXPECT_EQ(decoded.retryable(), retryable);
  } catch (const std::exception& other) {
    FAIL() << "wrong exception type: " << other.what();
  }
}

TEST(FleetWire, TypedErrorsRoundTrip) {
  expect_error_round_trip(support::TransportTimeoutError("io budget"), true);
  expect_error_round_trip(support::PreconditionError("bad scene"), false);
  expect_error_round_trip(support::DeviceError("vram exhausted", true), true);
  expect_error_round_trip(support::TransferError("pcie fault"), true);
  expect_error_round_trip(support::KernelTimeoutError("watchdog"), true);
  expect_error_round_trip(support::DeviceLostError("fell off the bus"), false);
  expect_error_round_trip(support::SanitizerError("oob read"), false);
  expect_error_round_trip(support::IoError("disk gone"), false);
  expect_error_round_trip(support::DeadlineExceededError("too late"), false);
  expect_error_round_trip(support::OverloadShedError("displaced"), true);
  expect_error_round_trip(support::ShardDownError("killed"), true);
  expect_error_round_trip(support::Error("generic", true), true);
  expect_error_round_trip(support::Error("generic", false), false);
}

TEST(FleetWire, ForeignExceptionsTravelAsGenericErrors) {
  const fleet::WireBuffer frame =
      fleet::encode_error(std::runtime_error("not ours"));
  EXPECT_TRUE(fleet::reply_is_error(frame));
  try {
    (void)fleet::decode_reply(frame);
    FAIL() << "decode_reply did not rethrow";
  } catch (const support::Error& decoded) {
    EXPECT_STREQ(decoded.what(), "not ours");
    EXPECT_FALSE(decoded.retryable());
  }
}

TEST(FleetWire, MalformedFramesThrowWireFormatError) {
  RenderRequest request;
  request.scene = full_scene();
  request.stars = random_stars(9, 4);
  const fleet::WireBuffer good = fleet::encode_request(request);

  // Truncation at every prefix length, including mid-header.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{4}, std::size_t{7},
                                 fleet::kWireHeaderBytes, good.size() / 2,
                                 good.size() - 1}) {
    fleet::WireBuffer cut(good.begin(),
                          good.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)fleet::decode_request(cut), support::WireFormatError)
        << "kept " << keep << " bytes";
  }

  fleet::WireBuffer bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)fleet::decode_request(bad_magic),
               support::WireFormatError);

  fleet::WireBuffer bad_version = good;
  bad_version[2] = fleet::kWireVersion + 1;
  EXPECT_THROW((void)fleet::decode_request(bad_version),
               support::WireFormatError);

  // A request frame is not a reply and vice versa.
  EXPECT_THROW((void)fleet::decode_reply(good), support::WireFormatError);

  fleet::WireBuffer trailing = good;
  trailing.push_back(0);
  fleet::reseal_frame(trailing);  // valid CRC: the length check must fire
  EXPECT_THROW((void)fleet::decode_request(trailing),
               support::WireFormatError);

  // A star count far beyond the frame must be rejected before allocation.
  // Reseal after patching so the CRC passes and the count guard itself is
  // what rejects.
  fleet::WireBuffer huge = good;
  const std::size_t count_offset =
      fleet::kWireHeaderBytes + 3 * 4 + 8 + 1 + 4 * 8;  // scene end
  for (std::size_t i = 0; i < 8; ++i) huge[count_offset + i] = 0xff;
  fleet::reseal_frame(huge);
  EXPECT_THROW((void)fleet::decode_request(huge), support::WireFormatError);
}

// A frame whose enum bytes are outside their enumerator ranges is
// malformed like any other corruption: reject at the boundary instead of
// letting a wild enum reach dispatch switches.
TEST(FleetWire, OutOfRangeEnumBytesThrowWireFormatError) {
  const fleet::WireBuffer good = fleet::encode_request(full_request());

  // Tail layout (deadline present): ..., simulator flag, simulator,
  // priority, deadline flag, deadline f64, sanitize.
  const std::size_t simulator_at = good.size() - 12;
  const std::size_t priority_at = good.size() - 11;

  // Pin the offsets first: patching with *valid* values must decode to
  // exactly those values, or the corruption below would hit other fields.
  // Frames are resealed after patching — the enum range check, not the
  // CRC, must be what rejects.
  fleet::WireBuffer retagged = good;
  retagged[simulator_at] =
      static_cast<std::uint8_t>(SimulatorKind::kSequential);
  retagged[priority_at] = static_cast<std::uint8_t>(RequestPriority::kLow);
  fleet::reseal_frame(retagged);
  const RenderRequest decoded = fleet::decode_request(retagged);
  ASSERT_EQ(decoded.simulator, SimulatorKind::kSequential);
  ASSERT_EQ(decoded.priority, RequestPriority::kLow);

  fleet::WireBuffer bad_simulator = good;
  bad_simulator[simulator_at] = 0xff;
  fleet::reseal_frame(bad_simulator);
  EXPECT_THROW((void)fleet::decode_request(bad_simulator),
               support::WireFormatError);

  fleet::WireBuffer bad_priority = good;
  bad_priority[priority_at] = 0xff;
  fleet::reseal_frame(bad_priority);
  EXPECT_THROW((void)fleet::decode_request(bad_priority),
               support::WireFormatError);
}

// --- CRC integrity: the PR 8 header hardening ------------------------------

TEST(FleetWire, HeaderCarriesMagicVersionAndCrc) {
  const fleet::WireBuffer frame = fleet::encode_request(full_request());
  ASSERT_GE(frame.size(), fleet::kWireHeaderBytes);
  EXPECT_EQ(frame[0], fleet::kWireMagic0);
  EXPECT_EQ(frame[1], fleet::kWireMagic1);
  EXPECT_EQ(frame[2], fleet::kWireVersion);
  EXPECT_EQ(fleet::frame_kind(frame), fleet::MessageKind::kRequest);

  // The stored CRC matches an independent recomputation over kind+payload.
  const std::uint32_t stored =
      static_cast<std::uint32_t>(frame[4]) |
      (static_cast<std::uint32_t>(frame[5]) << 8) |
      (static_cast<std::uint32_t>(frame[6]) << 16) |
      (static_cast<std::uint32_t>(frame[7]) << 24);
  const std::span<const std::uint8_t> bytes(frame);
  const std::uint32_t expected = fleet::wire_crc32(
      bytes.subspan(fleet::kWireHeaderBytes),
      fleet::wire_crc32(bytes.subspan(3, 1)));
  EXPECT_EQ(stored, expected);
}

// Fuzz-style corruption corpus: every single-bit flip in a request and an
// error frame (and a deterministic sample of a response frame — full pixel
// payloads make exhaustive flips slow) must either decode to
// WireFormatError or, for flips inside the CRC field itself, fail the CRC
// check. No flip may decode into a *different* valid message.
TEST(FleetWire, SingleBitFlipsNeverDecodeSilently) {
  const auto corrupt_sweep = [](const fleet::WireBuffer& good,
                                std::size_t stride) {
    for (std::size_t byte = 0; byte < good.size(); byte += stride) {
      for (int bit = 0; bit < 8; ++bit) {
        fleet::WireBuffer evil = good;
        evil[byte] =
            static_cast<std::uint8_t>(evil[byte] ^ (1u << bit));
        EXPECT_THROW((void)fleet::frame_kind(evil), support::WireFormatError)
            << "byte " << byte << " bit " << bit << " decoded silently";
      }
    }
  };

  RenderRequest request;
  request.scene = full_scene();
  request.stars = random_stars(13, 6);
  corrupt_sweep(fleet::encode_request(request), /*stride=*/1);
  corrupt_sweep(fleet::encode_error(support::DeviceError("flaky", true)),
                /*stride=*/1);

  RenderResponse response;
  namespace gs = starsim::gpusim;
  gs::Device device(gs::DeviceSpec::gtx480());
  response.result = std::make_shared<const SimulationResult>(
      starsim::ParallelSimulator(device).simulate(full_scene(),
                                                  request.stars));
  response.simulator = SimulatorKind::kParallel;
  corrupt_sweep(fleet::encode_response(response), /*stride=*/97);
}

TEST(FleetWire, ResealRestoresIntegrityAfterPatching) {
  fleet::WireBuffer frame = fleet::encode_error(support::IoError("x"));
  frame[fleet::kWireHeaderBytes + 1] ^= 0x01;  // flip a payload byte
  EXPECT_THROW((void)fleet::frame_kind(frame), support::WireFormatError);
  fleet::reseal_frame(frame);
  EXPECT_EQ(fleet::frame_kind(frame), fleet::MessageKind::kError);

  fleet::WireBuffer stub(fleet::kWireHeaderBytes - 1, 0);
  EXPECT_THROW(fleet::reseal_frame(stub), support::WireFormatError);
}

// --- Heartbeat + stats frames (the supervision satellites) -----------------

TEST(FleetWire, HeartbeatAndAckRoundTrip) {
  fleet::Heartbeat beat;
  beat.sequence = 0x1122334455667788ULL;
  const fleet::WireBuffer ping = fleet::encode_heartbeat(beat);
  EXPECT_EQ(fleet::frame_kind(ping), fleet::MessageKind::kHeartbeat);
  EXPECT_EQ(fleet::decode_heartbeat(ping).sequence, beat.sequence);

  fleet::HeartbeatAck ack;
  ack.sequence = beat.sequence;
  ack.queue_depth = 7;
  ack.queue_capacity = 64;
  ack.completed = 12345;
  const fleet::WireBuffer pong = fleet::encode_heartbeat_ack(ack);
  EXPECT_EQ(fleet::frame_kind(pong), fleet::MessageKind::kHeartbeatAck);
  const fleet::HeartbeatAck decoded = fleet::decode_heartbeat_ack(pong);
  EXPECT_EQ(decoded.sequence, ack.sequence);
  EXPECT_EQ(decoded.queue_depth, 7u);
  EXPECT_EQ(decoded.queue_capacity, 64u);
  EXPECT_EQ(decoded.completed, 12345u);

  // Kinds are not interchangeable.
  EXPECT_THROW((void)fleet::decode_heartbeat_ack(ping),
               support::WireFormatError);
  EXPECT_THROW((void)fleet::decode_heartbeat(pong),
               support::WireFormatError);
}

TEST(FleetWire, StatsReplyRoundTripsMetricFamilies) {
  using starsim::trace::MetricFamily;
  using starsim::trace::MetricType;
  std::vector<MetricFamily> families;
  {
    MetricFamily f{"starsim_serve_requests_total", "requests by outcome",
                   MetricType::kCounter, {}};
    f.add(41.0, {{"outcome", "completed"}, {"instance", "shard-3"}})
        .add(1.0, {{"outcome", "failed"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_queue_depth", "waiting requests",
                   MetricType::kGauge, {}};
    f.add(3.5);
    families.push_back(std::move(f));
  }

  const fleet::WireBuffer request = fleet::encode_stats_request();
  EXPECT_EQ(fleet::frame_kind(request), fleet::MessageKind::kStatsRequest);

  const fleet::WireBuffer reply = fleet::encode_stats_reply(families);
  EXPECT_EQ(fleet::frame_kind(reply), fleet::MessageKind::kStatsReply);
  const std::vector<MetricFamily> decoded = fleet::decode_stats_reply(reply);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "starsim_serve_requests_total");
  EXPECT_EQ(decoded[0].help, "requests by outcome");
  EXPECT_EQ(decoded[0].type, MetricType::kCounter);
  ASSERT_EQ(decoded[0].samples.size(), 2u);
  EXPECT_EQ(decoded[0].samples[0].value, 41.0);
  ASSERT_EQ(decoded[0].samples[0].labels.size(), 2u);
  EXPECT_EQ(decoded[0].samples[0].labels[0].name, "outcome");
  EXPECT_EQ(decoded[0].samples[0].labels[0].value, "completed");
  EXPECT_EQ(decoded[0].samples[0].labels[1].value, "shard-3");
  EXPECT_EQ(decoded[1].name, "starsim_serve_queue_depth");
  EXPECT_EQ(decoded[1].type, MetricType::kGauge);
  ASSERT_EQ(decoded[1].samples.size(), 1u);
  EXPECT_EQ(decoded[1].samples[0].value, 3.5);
  EXPECT_TRUE(decoded[1].samples[0].labels.empty());
}

TEST(FleetWire, ReplyClassifierRejectsShortFrames) {
  const fleet::WireBuffer tiny{1, 2};
  EXPECT_THROW((void)fleet::reply_is_error(tiny), support::WireFormatError);
}

}  // namespace
