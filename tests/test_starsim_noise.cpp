#include "starsim/noise.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.h"
#include "support/stats.h"

namespace {

using starsim::apply_sensor_noise;
using starsim::SensorNoiseConfig;
namespace io = starsim::imageio;

io::ImageF flat_image(int edge, float value) {
  return io::ImageF(edge, edge, value);
}

std::vector<double> as_doubles(const io::ImageF& image) {
  std::vector<double> values;
  values.reserve(image.pixel_count());
  for (float v : image.pixels()) values.push_back(v);
  return values;
}

TEST(Noise, DeterministicBySeed) {
  const io::ImageF flux = flat_image(32, 100.0f);
  SensorNoiseConfig config;
  config.seed = 42;
  const io::ImageF a = apply_sensor_noise(flux, config);
  const io::ImageF b = apply_sensor_noise(flux, config);
  EXPECT_EQ(a, b);
  config.seed = 43;
  EXPECT_NE(apply_sensor_noise(flux, config), a);
}

TEST(Noise, ShotNoiseHasPoissonStatistics) {
  const io::ImageF flux = flat_image(128, 400.0f);
  SensorNoiseConfig config;
  config.read_noise_electrons = 0.0;
  config.gain_electrons_per_flux = 1.0;
  const auto noisy = as_doubles(apply_sensor_noise(flux, config));
  const auto summary = starsim::support::summarize(noisy);
  EXPECT_NEAR(summary.mean, 400.0, 2.0);
  EXPECT_NEAR(summary.stddev, 20.0, 1.5);  // sqrt(400)
}

TEST(Noise, HigherGainReducesRelativeShotNoise) {
  const io::ImageF flux = flat_image(128, 100.0f);
  SensorNoiseConfig low;
  low.read_noise_electrons = 0.0;
  low.gain_electrons_per_flux = 1.0;
  SensorNoiseConfig high = low;
  high.gain_electrons_per_flux = 100.0;
  const double sd_low =
      starsim::support::stddev(as_doubles(apply_sensor_noise(flux, low)));
  const double sd_high =
      starsim::support::stddev(as_doubles(apply_sensor_noise(flux, high)));
  EXPECT_LT(sd_high, sd_low * 0.2);
}

TEST(Noise, ReadNoiseOnlyHasGaussianSigma) {
  const io::ImageF flux = flat_image(128, 50.0f);
  SensorNoiseConfig config;
  config.shot_noise = false;
  config.read_noise_electrons = 3.0;
  const auto noisy = as_doubles(apply_sensor_noise(flux, config));
  const auto summary = starsim::support::summarize(noisy);
  EXPECT_NEAR(summary.mean, 50.0, 0.2);
  EXPECT_NEAR(summary.stddev, 3.0, 0.2);
}

TEST(Noise, NoNoiseModesPassThrough) {
  io::ImageF flux(8, 8);
  flux(3, 4) = 17.5f;
  SensorNoiseConfig config;
  config.shot_noise = false;
  config.read_noise_electrons = 0.0;
  const io::ImageF out = apply_sensor_noise(flux, config);
  EXPECT_EQ(out, flux);
}

TEST(Noise, DarkOffsetRaisesFloor) {
  const io::ImageF flux = flat_image(64, 0.0f);
  SensorNoiseConfig config;
  config.shot_noise = false;
  config.read_noise_electrons = 0.0;
  config.dark_offset_electrons = 12.0;
  const io::ImageF out = apply_sensor_noise(flux, config);
  for (float v : out.pixels()) ASSERT_FLOAT_EQ(v, 12.0f);
}

TEST(Noise, OutputNeverNegative) {
  const io::ImageF flux = flat_image(64, 0.5f);
  SensorNoiseConfig config;
  config.read_noise_electrons = 10.0;  // often pushes below zero
  const io::ImageF out = apply_sensor_noise(flux, config);
  for (float v : out.pixels()) ASSERT_GE(v, 0.0f);
}

TEST(Noise, NegativeInputTreatedAsZeroFlux) {
  io::ImageF flux(4, 4, -5.0f);
  SensorNoiseConfig config;
  config.shot_noise = false;
  config.read_noise_electrons = 0.0;
  const io::ImageF out = apply_sensor_noise(flux, config);
  for (float v : out.pixels()) ASSERT_FLOAT_EQ(v, 0.0f);
}

TEST(Noise, GainConvertsBackToFluxUnits) {
  const io::ImageF flux = flat_image(128, 9.0f);
  SensorNoiseConfig config;
  config.gain_electrons_per_flux = 50.0;
  config.read_noise_electrons = 0.0;
  const auto noisy = as_doubles(apply_sensor_noise(flux, config));
  EXPECT_NEAR(starsim::support::mean(noisy), 9.0, 0.1);
}

TEST(Noise, RejectsBadConfig) {
  const io::ImageF flux = flat_image(4, 1.0f);
  SensorNoiseConfig config;
  config.gain_electrons_per_flux = 0.0;
  EXPECT_THROW((void)apply_sensor_noise(flux, config),
               starsim::support::PreconditionError);
  config.gain_electrons_per_flux = 1.0;
  config.read_noise_electrons = -1.0;
  EXPECT_THROW((void)apply_sensor_noise(flux, config),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)apply_sensor_noise(io::ImageF{}, SensorNoiseConfig{}),
               starsim::support::PreconditionError);
}

}  // namespace
