#include "starsim/openmp_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"

namespace {

using starsim::OpenMpSimulator;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::StarField;

SceneConfig scene_of(int edge, int roi) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

StarField workload_of(int edge, std::size_t count, bool subpixel = true) {
  starsim::WorkloadConfig workload;
  workload.star_count = count;
  workload.image_width = edge;
  workload.image_height = edge;
  workload.integer_positions = !subpixel;
  return generate_stars(workload);
}

class OpenMpEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OpenMpEquivalenceTest, MatchesSequentialForAnyThreadCount) {
  const int threads = GetParam();
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 300);
  SequentialSimulator seq;
  OpenMpSimulator par(threads);
  const auto a = seq.simulate(scene, stars).image;
  const auto b = par.simulate(scene, stars).image;
  double peak = 0.0;
  for (float v : a.pixels()) peak = std::max(peak, static_cast<double>(v));
  EXPECT_LT(max_abs_difference(a, b) / peak, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Threads, OpenMpEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(OpenMp, FlopCountEqualsSequential) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 150);
  SequentialSimulator seq;
  OpenMpSimulator par(4);
  EXPECT_EQ(par.simulate(scene, stars).timing.counters.flops,
            seq.simulate(scene, stars).timing.counters.flops);
}

TEST(OpenMp, ModeledTimeScalesWithCores) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 200);
  const double t1 =
      OpenMpSimulator(1).simulate(scene, stars).timing.host_compute_s;
  const double t4 =
      OpenMpSimulator(4).simulate(scene, stars).timing.host_compute_s;
  const double t8 =
      OpenMpSimulator(8).simulate(scene, stars).timing.host_compute_s;
  // 85% parallel efficiency: 4 cores -> 3.4x, 8 -> 6.8x.
  EXPECT_NEAR(t1 / t4, 3.4, 1e-6);
  EXPECT_NEAR(t1 / t8, 6.8, 1e-6);
}

TEST(OpenMp, ModeledTimeCappedAtHostCores) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 50);
  const double t8 =
      OpenMpSimulator(8).simulate(scene, stars).timing.host_compute_s;
  const double t64 =
      OpenMpSimulator(64).simulate(scene, stars).timing.host_compute_s;
  EXPECT_DOUBLE_EQ(t8, t64);  // HostSpec has 8 cores
}

TEST(OpenMp, SingleThreadMatchesSequentialModeledTime) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars = workload_of(64, 40);
  SequentialSimulator seq;
  OpenMpSimulator one(1);
  EXPECT_DOUBLE_EQ(one.simulate(scene, stars).timing.host_compute_s,
                   seq.simulate(scene, stars).timing.host_compute_s);
}

TEST(OpenMp, ReductionCostReported) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = workload_of(128, 64);
  const SimulationResult r = OpenMpSimulator(4).simulate(scene, stars);
  EXPECT_GT(r.timing.host_reduce_s, 0.0);
  EXPECT_GT(r.timing.application_s(), r.timing.host_compute_s);
}

TEST(OpenMp, StillSlowerThanModeledGpuAtScale) {
  // The extension closes some of the gap but not the orders of magnitude —
  // the multicore CPU must not upset the paper's conclusion.
  const starsim::SimulatorSelector selector;
  SceneConfig scene;  // 1024^2
  const auto prediction = selector.predict(scene, 1u << 15);
  const double cpu8 = starsim::gpusim::HostSpec::i7_860().parallel_time_s(
      static_cast<double>(
          selector.predict_sequential_flops(scene, 1u << 15)),
      8);
  EXPECT_GT(cpu8 / prediction.parallel.application_s(), 5.0);
}

TEST(OpenMp, ZeroThreadRequestPicksHardware) {
  OpenMpSimulator sim(0);
  EXPECT_GE(sim.threads(), 1);
}

TEST(OpenMp, EmptyFieldYieldsBlackImage) {
  OpenMpSimulator sim(4);
  const SimulationResult r =
      sim.simulate(scene_of(64, 10), StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
}

}  // namespace
