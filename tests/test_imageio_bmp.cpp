#include "imageio/bmp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace {

namespace io = starsim::imageio;
using starsim::support::IoError;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

io::ImageU8 random_image(int width, int height, std::uint64_t seed) {
  starsim::support::Pcg32 rng(seed);
  io::ImageU8 image(width, height);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.bounded(256));
  }
  return image;
}

TEST(Bmp, Gray8RoundTrip) {
  const io::ImageU8 original = random_image(37, 23, 1);
  const std::string path = temp_path("roundtrip8.bmp");
  io::write_bmp_gray8(original, path);
  EXPECT_EQ(io::read_bmp_gray(path), original);
  std::remove(path.c_str());
}

TEST(Bmp, Rgb24RoundTrip) {
  const io::ImageU8 original = random_image(16, 16, 2);
  const std::string path = temp_path("roundtrip24.bmp");
  io::write_bmp_rgb24(original, path);
  EXPECT_EQ(io::read_bmp_gray(path), original);
  std::remove(path.c_str());
}

class BmpPaddingTest : public ::testing::TestWithParam<int> {};

// Row padding kicks in for widths not divisible by 4; every width must
// survive the round trip.
TEST_P(BmpPaddingTest, Gray8AnyWidthRoundTrips) {
  const int width = GetParam();
  const io::ImageU8 original = random_image(width, 5, 77);
  const std::string path = temp_path("pad.bmp");
  io::write_bmp_gray8(original, path);
  EXPECT_EQ(io::read_bmp_gray(path), original);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Widths, BmpPaddingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 33));

class BmpPadding24Test : public ::testing::TestWithParam<int> {};

TEST_P(BmpPadding24Test, Rgb24AnyWidthRoundTrips) {
  const int width = GetParam();
  const io::ImageU8 original = random_image(width, 4, 99);
  const std::string path = temp_path("pad24.bmp");
  io::write_bmp_rgb24(original, path);
  EXPECT_EQ(io::read_bmp_gray(path), original);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Widths, BmpPadding24Test,
                         ::testing::Values(1, 2, 3, 4, 5, 7));

TEST(Bmp, HeaderMagicAndOffsets) {
  const io::ImageU8 image(8, 8, 100);
  const std::string path = temp_path("header.bmp");
  io::write_bmp_gray8(image, path);

  std::ifstream file(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(file)),
                                   std::istreambuf_iterator<char>());
  ASSERT_GE(bytes.size(), 54u + 1024u + 64u);
  EXPECT_EQ(bytes[0], 'B');
  EXPECT_EQ(bytes[1], 'M');
  // BITMAPINFOHEADER size at offset 14.
  EXPECT_EQ(bytes[14], 40);
  // bpp at offset 28.
  EXPECT_EQ(bytes[28], 8);
  // data offset = 14 + 40 + 256*4.
  const unsigned data_offset = bytes[10] | (bytes[11] << 8);
  EXPECT_EQ(data_offset, 14u + 40u + 1024u);
  std::remove(path.c_str());
}

TEST(Bmp, WriteRejectsEmptyImage) {
  io::ImageU8 empty;
  EXPECT_THROW(io::write_bmp_gray8(empty, temp_path("x.bmp")),
               starsim::support::PreconditionError);
}

TEST(Bmp, WriteThrowsOnBadPath) {
  const io::ImageU8 image(2, 2);
  EXPECT_THROW(io::write_bmp_gray8(image, "/no-such-dir/zz/x.bmp"), IoError);
}

TEST(Bmp, ReadRejectsMissingFile) {
  EXPECT_THROW((void)io::read_bmp_gray(temp_path("missing.bmp")), IoError);
}

TEST(Bmp, ReadRejectsGarbage) {
  const std::string path = temp_path("garbage.bmp");
  std::ofstream(path) << "this is not a bitmap at all, sorry";
  EXPECT_THROW((void)io::read_bmp_gray(path),
               starsim::support::PreconditionError);
  std::remove(path.c_str());
}

TEST(Bmp, ReadRejectsTruncated) {
  const io::ImageU8 image = random_image(16, 16, 5);
  const std::string path = temp_path("trunc.bmp");
  io::write_bmp_gray8(image, path);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW((void)io::read_bmp_gray(path),
               starsim::support::PreconditionError);
  std::remove(path.c_str());
}

}  // namespace
