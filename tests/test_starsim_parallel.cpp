#include "starsim/parallel_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "starsim/device_frame.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::ParallelSimulator;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::Star;
using starsim::StarField;

SceneConfig scene_of(int edge, int roi) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

double image_scale(const starsim::imageio::ImageF& image) {
  double peak = 0.0;
  for (float v : image.pixels()) peak = std::max(peak, static_cast<double>(v));
  return peak > 0.0 ? peak : 1.0;
}

class ParallelVsSequentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

// The defining contract: the GPU decomposition computes the same image as
// the sequential baseline (up to float accumulation order).
TEST_P(ParallelVsSequentialTest, ImagesAgree) {
  const auto [edge, roi, star_count] = GetParam();
  const SceneConfig scene = scene_of(edge, roi);
  starsim::WorkloadConfig workload;
  workload.star_count = star_count;
  workload.image_width = edge;
  workload.image_height = edge;
  workload.integer_positions = false;  // hardest case for coordinate math
  const StarField stars = generate_stars(workload);

  SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const auto a = seq.simulate(scene, stars).image;
  const auto b = par.simulate(scene, stars).image;
  EXPECT_LT(max_abs_difference(a, b) / image_scale(a), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ParallelVsSequentialTest,
    ::testing::Values(std::make_tuple(64, 10, 50),
                      std::make_tuple(128, 5, 300),
                      std::make_tuple(128, 16, 100),
                      std::make_tuple(256, 10, 1000),
                      std::make_tuple(100, 3, 77),
                      std::make_tuple(64, 1, 20)));

TEST(Parallel, CountersMatchPredictorExactly) {
  // Interior stars: the analytic predictor must reproduce every counter the
  // functional execution records (atomic conflicts aside, which the
  // predictor sets to zero and overlap can make positive).
  const SceneConfig scene = scene_of(256, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 200;
  workload.image_width = 256;
  workload.image_height = 256;
  workload.border_margin = 8;  // keep every ROI interior
  const StarField stars = generate_stars(workload);

  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SimulationResult r = par.simulate(scene, stars);

  const starsim::SimulatorSelector selector;
  const gs::KernelCounters predicted =
      selector.predict_parallel_counters(scene, stars.size());

  EXPECT_EQ(r.timing.counters.blocks_launched, predicted.blocks_launched);
  EXPECT_EQ(r.timing.counters.threads_launched, predicted.threads_launched);
  EXPECT_EQ(r.timing.counters.warps_launched, predicted.warps_launched);
  EXPECT_EQ(r.timing.counters.flops, predicted.flops);
  EXPECT_EQ(r.timing.counters.global_reads, predicted.global_reads);
  EXPECT_EQ(r.timing.counters.global_bytes_read, predicted.global_bytes_read);
  EXPECT_EQ(r.timing.counters.global_bytes_written,
            predicted.global_bytes_written);
  EXPECT_EQ(r.timing.counters.global_transactions,
            predicted.global_transactions);
  EXPECT_EQ(r.timing.counters.shared_bank_conflicts,
            predicted.shared_bank_conflicts);
  EXPECT_EQ(r.timing.counters.shared_reads, predicted.shared_reads);
  EXPECT_EQ(r.timing.counters.shared_writes, predicted.shared_writes);
  EXPECT_EQ(r.timing.counters.atomic_ops, predicted.atomic_ops);
  EXPECT_EQ(r.timing.counters.barriers, predicted.barriers);
  EXPECT_EQ(r.timing.counters.branch_sites_evaluated,
            predicted.branch_sites_evaluated);
  EXPECT_EQ(r.timing.counters.divergent_warp_branches, 0u);
}

TEST(Parallel, StackedStarsProduceAtomicConflicts) {
  const SceneConfig scene = scene_of(64, 10);
  // Ten stars on the same pixel: their ROIs overlap completely.
  StarField stars(10, Star{3.0f, 32.0f, 32.0f, 1.0f});
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SimulationResult r = par.simulate(scene, stars);
  // 100 pixels x 10 ops each -> 9 conflicts per pixel.
  EXPECT_EQ(r.timing.counters.atomic_conflicts, 900u);
}

TEST(Parallel, BorderStarsDivergeAtBoundaryBranch) {
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars{Star{3.0f, 0.0f, 0.0f, 1.0f}};  // corner star
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SimulationResult r = par.simulate(scene, stars);
  EXPECT_GT(r.timing.counters.divergent_warp_branches, 0u);
}

TEST(Parallel, BreakdownFieldsPopulated) {
  const SceneConfig scene = scene_of(128, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 64;
  workload.image_width = 128;
  workload.image_height = 128;
  const StarField stars = generate_stars(workload);
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SimulationResult r = par.simulate(scene, stars);
  EXPECT_GT(r.timing.kernel_s, 0.0);
  EXPECT_GT(r.timing.h2d_s, 0.0);
  EXPECT_GT(r.timing.d2h_s, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.lut_build_s, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.texture_bind_s, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.host_compute_s, 0.0);
  EXPECT_GT(r.timing.utilization, 0.0);
  EXPECT_GT(r.timing.achieved_gflops, 0.0);
  EXPECT_GT(r.timing.wall_s, 0.0);
  EXPECT_NEAR(r.timing.application_s(),
              r.timing.kernel_s + r.timing.h2d_s + r.timing.d2h_s, 1e-12);
}

TEST(Parallel, TransferBytesCoverStarsAndImageBothWays) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars(32, Star{3.0f, 64.0f, 64.0f, 1.0f});
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  (void)par.simulate(scene, stars);
  const gs::TransferStats& t = device.transfer_stats();
  const std::uint64_t image_bytes = 128 * 128 * 4;
  EXPECT_EQ(t.h2d_bytes, 32 * sizeof(starsim::Star) + image_bytes);
  EXPECT_EQ(t.d2h_bytes, image_bytes);
  EXPECT_EQ(t.h2d_calls, 2u);
  EXPECT_EQ(t.d2h_calls, 1u);
}

TEST(Parallel, EmptyStarFieldShortCircuits) {
  const SceneConfig scene = scene_of(64, 10);
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SimulationResult r = par.simulate(scene, StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
  EXPECT_DOUBLE_EQ(r.timing.kernel_s, 0.0);
}

TEST(Parallel, RoiBeyondBlockLimitThrows) {
  // Section IV-D: "the thread block has a maximum of 1024 threads, and this
  // translates into the limitation on the size of ROI".
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  EXPECT_EQ(par.max_roi_side(), 32);
  const SceneConfig scene = scene_of(128, 33);  // 1089 > 1024 threads
  const StarField stars(1, Star{3.0f, 64.0f, 64.0f, 1.0f});
  EXPECT_THROW((void)par.simulate(scene, stars),
               starsim::support::DeviceError);
}

TEST(Parallel, MaxRoiSideExactlyFits) {
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const SceneConfig scene = scene_of(64, 32);  // 1024 threads per block
  const StarField stars(2, Star{3.0f, 32.0f, 32.0f, 1.0f});
  EXPECT_NO_THROW((void)par.simulate(scene, stars));
}

TEST(Parallel, DeviceMemoryReleasedAfterRun) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars(16, Star{3.0f, 64.0f, 64.0f, 1.0f});
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  const std::size_t before = device.memory().used_bytes();
  (void)par.simulate(scene, stars);
  EXPECT_EQ(device.memory().used_bytes(), before);
}

class TiledRoiTest : public ::testing::TestWithParam<int> {};

// The Section IV-D limitation lifted: with tiling enabled, ROIs beyond the
// 1024-thread block limit render correctly.
TEST_P(TiledRoiTest, LargeRoiMatchesSequential) {
  const int roi = GetParam();
  SceneConfig scene = scene_of(160, roi);
  scene.psf_sigma = static_cast<double>(roi) / 6.0;  // fill the wide ROI
  starsim::WorkloadConfig workload;
  workload.star_count = 40;
  workload.image_width = 160;
  workload.image_height = 160;
  workload.integer_positions = false;
  const StarField stars = generate_stars(workload);

  SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelOptions options;
  options.allow_tiling = true;
  ParallelSimulator tiled(device, options);
  const auto a = seq.simulate(scene, stars).image;
  const auto b = tiled.simulate(scene, stars).image;
  EXPECT_LT(max_abs_difference(a, b) / image_scale(a), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sides, TiledRoiTest,
                         ::testing::Values(33, 40, 48, 64));

TEST(Parallel, TilingAlsoCoversSmallRoisWhenForced) {
  // tile_side 4 over an ROI of 10: partial edge tiles exercise the in-ROI
  // guard branch.
  const SceneConfig scene = scene_of(96, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 60;
  workload.image_width = 96;
  workload.image_height = 96;
  const StarField stars = generate_stars(workload);

  SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelOptions options;
  options.allow_tiling = true;
  options.tile_side = 4;
  ParallelSimulator tiled(device, options);
  const auto a = seq.simulate(scene, stars).image;
  const SimulationResult r = tiled.simulate(scene, stars);
  EXPECT_LT(max_abs_difference(a, r.image) / image_scale(a), 1e-4);
  // 10/4 -> 3x3 tiles per star (plus grid-rounding padding blocks).
  EXPECT_GE(r.timing.counters.blocks_launched, 60u * 9u);
  // Edge tiles diverge on the in-ROI guard.
  EXPECT_GT(r.timing.counters.divergent_warp_branches, 0u);
}

TEST(Parallel, TilingOffByDefaultStillThrows) {
  gs::Device device(gs::DeviceSpec::gtx480());
  ParallelSimulator par(device);
  EXPECT_FALSE(par.options().allow_tiling);
  const SceneConfig scene = scene_of(128, 40);
  const StarField stars(1, Star{3.0f, 64.0f, 64.0f, 1.0f});
  EXPECT_THROW((void)par.simulate(scene, stars),
               starsim::support::DeviceError);
}

TEST(Parallel, RejectsNonPositiveTileSide) {
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelOptions options;
  options.tile_side = 0;
  EXPECT_THROW(ParallelSimulator(device, options),
               starsim::support::PreconditionError);
}

TEST(Parallel, GridGeometryCoversLargeStarCounts) {
  // > 65535-style star counts need the 2-D grid; verify the helper's
  // geometry covers every star and the kernel guards the padding blocks.
  const auto config = starsim::star_centric_config(100000, 4);
  EXPECT_GE(config.total_blocks(), 100000u);
  EXPECT_EQ(config.block.x, 4u);
  EXPECT_EQ(config.block.y, 4u);
  const auto small = starsim::star_centric_config(7, 10);
  EXPECT_EQ(small.total_blocks(), 7u);
}

}  // namespace
