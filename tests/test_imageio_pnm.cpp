#include "imageio/pnm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "support/error.h"
#include "support/rng.h"

namespace {

namespace io = starsim::imageio;
using starsim::support::IoError;
using starsim::support::PreconditionError;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Pnm, Pgm8RoundTrip) {
  starsim::support::Pcg32 rng(3);
  io::ImageU8 original(31, 17);
  for (auto& v : original.pixels()) {
    v = static_cast<std::uint8_t>(rng.bounded(256));
  }
  const std::string path = temp_path("rt8.pgm");
  io::write_pgm8(original, path);
  EXPECT_EQ(io::read_pgm8(path), original);
  std::remove(path.c_str());
}

TEST(Pnm, Pgm16RoundTrip) {
  starsim::support::Pcg32 rng(4);
  io::ImageU16 original(13, 9);
  for (auto& v : original.pixels()) {
    v = static_cast<std::uint16_t>(rng.bounded(65536));
  }
  const std::string path = temp_path("rt16.pgm");
  io::write_pgm16(original, path);
  EXPECT_EQ(io::read_pgm16(path), original);
  std::remove(path.c_str());
}

TEST(Pnm, Pgm16IsBigEndianOnDisk) {
  io::ImageU16 image(1, 1);
  image(0, 0) = 0x0102;
  const std::string path = temp_path("endian.pgm");
  io::write_pgm16(image, path);
  std::ifstream file(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  ASSERT_GE(bytes.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 2]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 1]), 0x02);
  std::remove(path.c_str());
}

TEST(Pnm, HeaderIsP5WithDimensions) {
  io::ImageU8 image(5, 7, 1);
  const std::string path = temp_path("hdr.pgm");
  io::write_pgm8(image, path);
  std::ifstream file(path, std::ios::binary);
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "P5");
  int width = 0;
  int height = 0;
  int maxval = 0;
  file >> width >> height >> maxval;
  EXPECT_EQ(width, 5);
  EXPECT_EQ(height, 7);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

TEST(Pnm, ReaderHonorsComments) {
  const std::string path = temp_path("comment.pgm");
  std::ofstream out(path, std::ios::binary);
  out << "P5\n# a comment line\n2 1\n# another\n255\n";
  out.put(static_cast<char>(9));
  out.put(static_cast<char>(250));
  out.close();
  const io::ImageU8 image = io::read_pgm8(path);
  EXPECT_EQ(image.width(), 2);
  EXPECT_EQ(image.height(), 1);
  EXPECT_EQ(image(0, 0), 9);
  EXPECT_EQ(image(1, 0), 250);
  std::remove(path.c_str());
}

TEST(Pnm, ReadRejectsWrongBitDepth) {
  io::ImageU8 image(2, 2, 3);
  const std::string path = temp_path("depth.pgm");
  io::write_pgm8(image, path);
  EXPECT_THROW((void)io::read_pgm16(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(Pnm, ReadRejectsTruncatedRaster) {
  const std::string path = temp_path("trunc.pgm");
  std::ofstream out(path, std::ios::binary);
  out << "P5\n4 4\n255\n";
  out.put(1);  // only one of 16 bytes
  out.close();
  EXPECT_THROW((void)io::read_pgm8(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(Pnm, ReadRejectsMissingFile) {
  EXPECT_THROW((void)io::read_pgm8(temp_path("no.pgm")), IoError);
}

TEST(Pnm, PpmWritesThreePlanes) {
  io::ImageU8 r(2, 2, 10);
  io::ImageU8 g(2, 2, 20);
  io::ImageU8 b(2, 2, 30);
  const std::string path = temp_path("rgb.ppm");
  io::write_ppm(r, g, b, path);
  std::ifstream file(path, std::ios::binary);
  std::string magic;
  file >> magic;
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

TEST(Pnm, PpmRejectsMismatchedPlanes) {
  io::ImageU8 r(2, 2);
  io::ImageU8 g(3, 2);
  io::ImageU8 b(2, 2);
  EXPECT_THROW(io::write_ppm(r, g, b, temp_path("bad.ppm")),
               PreconditionError);
}

}  // namespace
