#include "gpusim/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "gpusim/stream.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using gs::FaultInjector;
using gs::FaultKind;
using gs::FaultPolicy;
using gs::FaultSite;
using starsim::support::DeviceError;
using starsim::support::DeviceLostError;
using starsim::support::KernelTimeoutError;
using starsim::support::PreconditionError;
using starsim::support::TransferError;

// Drives every site a fixed number of times, swallowing injected faults,
// and returns the recorded history.
std::vector<gs::InjectedFault> drive(FaultInjector& injector, int rounds) {
  std::vector<std::byte> payload(256, std::byte{0});
  for (int i = 0; i < rounds; ++i) {
    try {
      injector.on_malloc(1024);
    } catch (const DeviceError&) {
    }
    try {
      injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(),
                           payload.size());
    } catch (const DeviceError&) {
    }
    try {
      injector.on_transfer(FaultSite::kMemcpyD2H, payload.data(),
                           payload.size());
    } catch (const DeviceError&) {
    }
    try {
      injector.on_kernel_launch(1e-3);
    } catch (const DeviceError&) {
    }
  }
  return injector.history();
}

TEST(FaultInjector, NoFaultsAtZeroRates) {
  FaultInjector injector(FaultPolicy{});
  const auto history = drive(injector, 50);
  EXPECT_TRUE(history.empty());
  EXPECT_FALSE(injector.device_lost());
  EXPECT_EQ(injector.consult_count(), 200u);
}

TEST(FaultInjector, RejectsOutOfRangeRates) {
  FaultPolicy policy;
  policy.h2d_fault_rate = 1.5;
  EXPECT_THROW(FaultInjector{policy}, PreconditionError);
  policy.h2d_fault_rate = -0.1;
  EXPECT_THROW(FaultInjector{policy}, PreconditionError);
}

TEST(FaultInjector, SameSeedSameFaultSequence) {
  const FaultPolicy policy = FaultPolicy::transient(0.2, 77);
  FaultInjector a(policy);
  FaultInjector b(policy);
  const auto history_a = drive(a, 100);
  const auto history_b = drive(b, 100);
  ASSERT_FALSE(history_a.empty());
  EXPECT_EQ(history_a, history_b);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(FaultPolicy::transient(0.2, 1));
  FaultInjector b(FaultPolicy::transient(0.2, 2));
  EXPECT_NE(drive(a, 100), drive(b, 100));
}

TEST(FaultInjector, ResetReplaysIdentically) {
  FaultInjector injector(FaultPolicy::transient(0.25, 9));
  const auto first = drive(injector, 60);
  injector.reset();
  EXPECT_EQ(injector.consult_count(), 0u);
  const auto second = drive(injector, 60);
  EXPECT_EQ(first, second);
}

TEST(FaultInjector, ApproximatesConfiguredRate) {
  FaultPolicy policy;
  policy.seed = 3;
  policy.h2d_fault_rate = 0.1;
  FaultInjector injector(policy);
  std::vector<std::byte> payload(16, std::byte{0});
  int faults = 0;
  for (int i = 0; i < 5000; ++i) {
    try {
      injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(),
                           payload.size());
    } catch (const TransferError&) {
      ++faults;
    }
  }
  EXPECT_GT(faults, 5000 * 0.1 * 0.6);
  EXPECT_LT(faults, 5000 * 0.1 * 1.4);
}

TEST(FaultInjector, TransferFaultsAreRetryableTransferErrors) {
  FaultPolicy policy;
  policy.seed = 11;
  policy.d2h_fault_rate = 1.0;
  FaultInjector injector(policy);
  std::vector<std::byte> payload(64, std::byte{0});
  try {
    injector.on_transfer(FaultSite::kMemcpyD2H, payload.data(),
                         payload.size());
    FAIL() << "expected TransferError";
  } catch (const TransferError& error) {
    EXPECT_TRUE(error.retryable());
    EXPECT_NE(std::string(error.what()).find("fault_injector"),
              std::string::npos);
  }
}

TEST(FaultInjector, CorruptionActuallyFlipsAByte) {
  FaultPolicy policy;
  policy.seed = 5;
  policy.h2d_fault_rate = 1.0;
  policy.corruption_fraction = 1.0;  // every fault corrupts
  FaultInjector injector(policy);
  std::vector<std::byte> payload(256, std::byte{0});
  EXPECT_THROW(injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(),
                                    payload.size()),
               TransferError);
  int flipped = 0;
  for (std::byte b : payload) {
    if (b != std::byte{0}) ++flipped;
  }
  EXPECT_EQ(flipped, 1);
  ASSERT_EQ(injector.history().size(), 1u);
  EXPECT_EQ(injector.history()[0].kind, FaultKind::kTransferCorruption);
}

TEST(FaultInjector, OutrightFailureTearsDestination) {
  FaultPolicy policy;
  policy.seed = 5;
  policy.h2d_fault_rate = 1.0;
  policy.corruption_fraction = 0.0;  // every fault fails outright
  FaultInjector injector(policy);
  std::vector<std::byte> payload(256, std::byte{0});
  EXPECT_THROW(injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(),
                                    payload.size()),
               TransferError);
  EXPECT_EQ(payload[0], std::byte{0xee});
  ASSERT_EQ(injector.history().size(), 1u);
  EXPECT_EQ(injector.history()[0].kind, FaultKind::kTransferFailure);
}

TEST(FaultInjector, InjectedOomIsRetryable) {
  FaultPolicy policy;
  policy.seed = 21;
  policy.malloc_oom_rate = 1.0;
  FaultInjector injector(policy);
  try {
    injector.on_malloc(4096);
    FAIL() << "expected DeviceError";
  } catch (const DeviceError& error) {
    EXPECT_TRUE(error.retryable());
  }
}

TEST(FaultInjector, WatchdogBudgetIsDeterministic) {
  FaultPolicy policy;
  policy.watchdog_budget_s = 1e-3;
  FaultInjector injector(policy);
  EXPECT_NO_THROW(injector.on_kernel_launch(5e-4));
  // Over budget: every attempt times out, regardless of the RNG.
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(injector.on_kernel_launch(2e-3), KernelTimeoutError);
  }
}

TEST(FaultInjector, DeviceLostLatchesAcrossAllSites) {
  FaultInjector injector(FaultPolicy{});
  injector.mark_device_lost();
  EXPECT_TRUE(injector.device_lost());
  std::vector<std::byte> payload(8, std::byte{0});
  EXPECT_THROW(injector.on_malloc(1), DeviceLostError);
  EXPECT_THROW(
      injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(), 8),
      DeviceLostError);
  EXPECT_THROW(injector.on_kernel_launch(1e-6), DeviceLostError);
  EXPECT_THROW(injector.on_texture_bind(), DeviceLostError);
  EXPECT_THROW(injector.on_stream_enqueue(), DeviceLostError);
  injector.reset();
  EXPECT_FALSE(injector.device_lost());
  EXPECT_NO_THROW(injector.on_malloc(1));
}

TEST(FaultInjector, EscalationEventuallyLosesTheDevice) {
  FaultPolicy policy;
  policy.seed = 13;
  policy.h2d_fault_rate = 1.0;
  policy.device_lost_rate = 0.5;
  FaultInjector injector(policy);
  std::vector<std::byte> payload(8, std::byte{0});
  bool lost = false;
  for (int i = 0; i < 64 && !lost; ++i) {
    try {
      injector.on_transfer(FaultSite::kMemcpyH2D, payload.data(), 8);
    } catch (const DeviceLostError&) {
      lost = true;
    } catch (const TransferError&) {
    }
  }
  EXPECT_TRUE(lost);
  EXPECT_TRUE(injector.device_lost());
  EXPECT_EQ(injector.history().back().kind, FaultKind::kDeviceLost);
}

TEST(FaultInjector, DeviceConsultsInjectorOnTransfers) {
  gs::Device device(gs::DeviceSpec::gtx480());
  FaultPolicy policy;
  policy.seed = 17;
  policy.h2d_fault_rate = 1.0;
  policy.corruption_fraction = 0.0;
  FaultInjector injector(policy);
  device.set_fault_injector(&injector);
  auto buffer = device.malloc<float>(16);
  const std::vector<float> host(16, 1.0f);
  EXPECT_THROW(device.memcpy_h2d(buffer, std::span<const float>(host)),
               TransferError);
  device.set_fault_injector(nullptr);
  EXPECT_NO_THROW(device.memcpy_h2d(buffer, std::span<const float>(host)));
  device.free(buffer);
}

TEST(FaultInjector, DeviceMallocConsultsInjector) {
  gs::Device device(gs::DeviceSpec::gtx480());
  FaultPolicy policy;
  policy.seed = 19;
  policy.malloc_oom_rate = 1.0;
  FaultInjector injector(policy);
  device.set_fault_injector(&injector);
  EXPECT_THROW((void)device.malloc<float>(16), DeviceError);
  EXPECT_EQ(device.memory().used_bytes(), 0u);
  EXPECT_TRUE(device.lost() == false);
}

TEST(FaultInjector, StreamSchedulerConsultsInjector) {
  gs::StreamScheduler scheduler(1);
  const gs::StreamId stream = scheduler.create_stream();
  FaultPolicy policy;
  policy.seed = 23;
  policy.stream_fault_rate = 1.0;
  FaultInjector injector(policy);
  scheduler.set_fault_injector(&injector);
  EXPECT_THROW((void)scheduler.enqueue_h2d(stream, 1e-3), TransferError);
  scheduler.set_fault_injector(nullptr);
  EXPECT_NO_THROW((void)scheduler.enqueue_h2d(stream, 1e-3));
}

TEST(FaultInjector, LostDeviceReportsThroughDevice) {
  gs::Device device(gs::DeviceSpec::gtx480());
  EXPECT_FALSE(device.lost());
  FaultInjector injector(FaultPolicy{});
  device.set_fault_injector(&injector);
  EXPECT_FALSE(device.lost());
  injector.mark_device_lost();
  EXPECT_TRUE(device.lost());
  EXPECT_THROW((void)device.malloc<float>(1), DeviceLostError);
}

}  // namespace
