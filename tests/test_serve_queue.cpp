#include "serve/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/error.h"

namespace {

using starsim::serve::BoundedQueue;
using starsim::support::PreconditionError;

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), PreconditionError);
}

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, PushRejectsAfterClose) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  int v = 2;
  EXPECT_FALSE(queue.try_push(v));
}

TEST(BoundedQueue, CloseThenDrainDeliversEverything) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  // Close stops admission but queued items stay poppable until empty.
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPopper) {
  BoundedQueue<int> queue(2);
  std::thread popper([&queue] {
    EXPECT_FALSE(queue.pop().has_value());  // blocks until close
  });
  queue.close();
  popper.join();
}

TEST(BoundedQueue, CloseUnblocksFullPusher) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::thread pusher([&queue] {
    EXPECT_FALSE(queue.push(1));  // blocks on full queue until close
  });
  queue.close();
  pusher.join();
}

TEST(BoundedQueue, PopRunCoalescesCompatibleFront) {
  BoundedQueue<int> queue(16);
  // 7, 7, 7, 9, 7: the run must stop at the first incompatible item.
  for (int v : {7, 7, 7, 9, 7}) EXPECT_TRUE(queue.push(v));
  const auto same = [](int first, int next) { return first == next; };
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{7, 7, 7}));
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{9}));
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{7}));
}

TEST(BoundedQueue, PopRunHonorsMaxRun) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(queue.push(1));
  const auto always = [](int, int) { return true; };
  EXPECT_EQ(queue.pop_run(4, always).size(), 4u);
  EXPECT_EQ(queue.pop_run(4, always).size(), 2u);
}

TEST(BoundedQueue, PopRunEmptyAfterCloseAndDrain) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_TRUE(queue.pop_run(4, [](int, int) { return true; }).empty());
}

TEST(BoundedQueue, ConcurrentProducersConsumersPreserveEveryItem) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);  // small: forces both wait paths
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item);
        count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
