#include "serve/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "support/error.h"

namespace {

using starsim::serve::BoundedQueue;
using starsim::support::PreconditionError;

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), PreconditionError);
}

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, PushRejectsAfterClose) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  int v = 2;
  EXPECT_FALSE(queue.try_push(v));
}

TEST(BoundedQueue, CloseThenDrainDeliversEverything) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  // Close stops admission but queued items stay poppable until empty.
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPopper) {
  BoundedQueue<int> queue(2);
  std::thread popper([&queue] {
    EXPECT_FALSE(queue.pop().has_value());  // blocks until close
  });
  queue.close();
  popper.join();
}

TEST(BoundedQueue, CloseUnblocksFullPusher) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::thread pusher([&queue] {
    EXPECT_FALSE(queue.push(1));  // blocks on full queue until close
  });
  queue.close();
  pusher.join();
}

TEST(BoundedQueue, PopRunCoalescesCompatibleFront) {
  BoundedQueue<int> queue(16);
  // 7, 7, 7, 9, 7: the run must stop at the first incompatible item.
  for (int v : {7, 7, 7, 9, 7}) EXPECT_TRUE(queue.push(v));
  const auto same = [](int first, int next) { return first == next; };
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{7, 7, 7}));
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{9}));
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{7}));
}

TEST(BoundedQueue, PopRunHonorsMaxRun) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(queue.push(1));
  const auto always = [](int, int) { return true; };
  EXPECT_EQ(queue.pop_run(4, always).size(), 4u);
  EXPECT_EQ(queue.pop_run(4, always).size(), 2u);
}

TEST(BoundedQueue, PopRunEmptyAfterCloseAndDrain) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_TRUE(queue.pop_run(4, [](int, int) { return true; }).empty());
}

TEST(BoundedQueue, PopDrainsHighestBandFirst) {
  BoundedQueue<int> queue(8, 3);
  int low_a = 1;
  int low_b = 2;
  int mid = 3;
  int high = 4;
  EXPECT_TRUE(queue.try_push(low_a, 0));
  EXPECT_TRUE(queue.try_push(high, 2));
  EXPECT_TRUE(queue.try_push(mid, 1));
  EXPECT_TRUE(queue.try_push(low_b, 0));
  // Highest band first; FIFO within a band regardless of arrival order.
  EXPECT_EQ(queue.pop(), 4);
  EXPECT_EQ(queue.pop(), 3);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, PopRunNeverSpansBands) {
  BoundedQueue<int> queue(8, 3);
  int a = 5;
  int b = 5;
  int c = 5;
  EXPECT_TRUE(queue.try_push(a, 1));
  EXPECT_TRUE(queue.try_push(b, 1));
  EXPECT_TRUE(queue.try_push(c, 2));
  const auto same = [](int first, int next) { return first == next; };
  // All three are mutually compatible, but a run has one priority: the
  // band-2 item drains alone, then the band-1 pair.
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{5}));
  EXPECT_EQ(queue.pop_run(8, same), (std::vector<int>{5, 5}));
}

TEST(BoundedQueue, SheddingDisplacesYoungestOfLowestBand) {
  BoundedQueue<int> queue(3, 3);
  int low_old = 1;
  int low_young = 2;
  int mid = 3;
  EXPECT_TRUE(queue.try_push(low_old, 0));
  EXPECT_TRUE(queue.try_push(low_young, 0));
  EXPECT_TRUE(queue.try_push(mid, 1));

  using Outcome = BoundedQueue<int>::PushOutcome;
  std::optional<int> displaced;
  int high = 4;
  // Full: the high admission sheds the *youngest* item of the *lowest*
  // band below it, not the oldest and not the mid band.
  EXPECT_EQ(queue.try_push_shedding(high, 2, displaced), Outcome::kDisplaced);
  EXPECT_EQ(displaced, 2);
  int mid_2 = 5;
  EXPECT_EQ(queue.try_push_shedding(mid_2, 1, displaced), Outcome::kDisplaced);
  EXPECT_EQ(displaced, 1);
  // Band 0 is now empty: nothing below mid or low remains to shed.
  int mid_3 = 6;
  EXPECT_EQ(queue.try_push_shedding(mid_3, 1, displaced), Outcome::kRejected);
  EXPECT_FALSE(displaced.has_value());
  int low_again = 7;
  EXPECT_EQ(queue.try_push_shedding(low_again, 0, displaced),
            Outcome::kRejected);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.band_size(0), 0u);
  EXPECT_EQ(queue.band_size(1), 2u);
  EXPECT_EQ(queue.band_size(2), 1u);
}

TEST(BoundedQueue, SheddingAcceptsWithoutVictimWhenSpaceRemains) {
  BoundedQueue<int> queue(2, 3);
  using Outcome = BoundedQueue<int>::PushOutcome;
  std::optional<int> displaced;
  int a = 1;
  EXPECT_EQ(queue.try_push_shedding(a, 2, displaced), Outcome::kAccepted);
  EXPECT_FALSE(displaced.has_value());
  queue.close();
  int b = 2;
  EXPECT_EQ(queue.try_push_shedding(b, 2, displaced), Outcome::kRejected);
}

TEST(BoundedQueue, OutOfRangeBandClampsToTopClass) {
  BoundedQueue<int> queue(4, 3);
  int urgent = 9;
  int normal = 1;
  EXPECT_TRUE(queue.try_push(normal, 1));
  EXPECT_TRUE(queue.try_push(urgent, 99));  // clamped to band 2
  EXPECT_EQ(queue.band_size(2), 1u);
  EXPECT_EQ(queue.band_size(99), 0u);
  EXPECT_EQ(queue.pop(), 9);
}

TEST(BoundedQueue, ConcurrentProducersConsumersPreserveEveryItem) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);  // small: forces both wait paths
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item);
        count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
