#include "starsim/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.h"

namespace {

using starsim::generate_stars;
using starsim::StarField;
using starsim::WorkloadConfig;

TEST(Workload, GeneratesRequestedCount) {
  WorkloadConfig config;
  config.star_count = 777;
  EXPECT_EQ(generate_stars(config).size(), 777u);
}

TEST(Workload, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.star_count = 100;
  config.seed = 99;
  EXPECT_EQ(generate_stars(config), generate_stars(config));
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig a;
  a.star_count = 100;
  a.seed = 1;
  WorkloadConfig b = a;
  b.seed = 2;
  EXPECT_NE(generate_stars(a), generate_stars(b));
}

TEST(Workload, PositionsInsideImage) {
  WorkloadConfig config;
  config.star_count = 5000;
  config.image_width = 640;
  config.image_height = 480;
  for (const auto& star : generate_stars(config)) {
    ASSERT_GE(star.x, 0.0f);
    ASSERT_LT(star.x, 640.0f);
    ASSERT_GE(star.y, 0.0f);
    ASSERT_LT(star.y, 480.0f);
  }
}

TEST(Workload, MagnitudesInConfiguredRange) {
  WorkloadConfig config;
  config.star_count = 5000;
  config.magnitude_min = 2.0;
  config.magnitude_max = 6.0;
  for (const auto& star : generate_stars(config)) {
    ASSERT_GE(star.magnitude, 2.0f);
    ASSERT_LT(star.magnitude, 6.0f);
  }
}

TEST(Workload, IntegerPositionsAreIntegral) {
  WorkloadConfig config;
  config.star_count = 1000;
  config.integer_positions = true;
  for (const auto& star : generate_stars(config)) {
    ASSERT_EQ(star.x, std::floor(star.x));
    ASSERT_EQ(star.y, std::floor(star.y));
  }
}

TEST(Workload, SubpixelPositionsMostlyFractional) {
  WorkloadConfig config;
  config.star_count = 1000;
  config.integer_positions = false;
  int fractional = 0;
  for (const auto& star : generate_stars(config)) {
    if (star.x != std::floor(star.x)) ++fractional;
  }
  EXPECT_GT(fractional, 990);
}

TEST(Workload, BorderMarginKeepsRoiInterior) {
  WorkloadConfig config;
  config.star_count = 2000;
  config.border_margin = 16;
  config.image_width = 256;
  config.image_height = 256;
  for (const auto& star : generate_stars(config)) {
    ASSERT_GE(star.x, 16.0f);
    ASSERT_LT(star.x, 240.0f);
    ASSERT_GE(star.y, 16.0f);
    ASSERT_LT(star.y, 240.0f);
  }
}

TEST(Workload, DefaultWeightIsOne) {
  WorkloadConfig config;
  config.star_count = 10;
  for (const auto& star : generate_stars(config)) {
    ASSERT_EQ(star.weight, 1.0f);
  }
}

TEST(Workload, RejectsBadConfigs) {
  using starsim::support::PreconditionError;
  WorkloadConfig config;
  config.star_count = 0;
  EXPECT_THROW((void)generate_stars(config), PreconditionError);
  config.star_count = 1;
  config.image_width = 0;
  EXPECT_THROW((void)generate_stars(config), PreconditionError);
  config.image_width = 64;
  config.magnitude_min = 8.0;
  config.magnitude_max = 2.0;
  EXPECT_THROW((void)generate_stars(config), PreconditionError);
  config.magnitude_max = 15.0;
  config.border_margin = 32;  // 2*32 >= 64
  EXPECT_THROW((void)generate_stars(config), PreconditionError);
}

TEST(Workload, Test1SweepIsPowersOfTwo) {
  const auto counts = starsim::test1_star_counts();
  ASSERT_EQ(counts.size(), 13u);
  EXPECT_EQ(counts.front(), 32u);       // 2^5
  EXPECT_EQ(counts.back(), 131072u);    // 2^17
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[i - 1] * 2);
  }
}

TEST(Workload, Test2SweepIsEvenSidesUpTo32) {
  const auto sides = starsim::test2_roi_sides();
  ASSERT_EQ(sides.size(), 16u);
  EXPECT_EQ(sides.front(), 2);
  EXPECT_EQ(sides.back(), 32);
  for (int side : sides) EXPECT_EQ(side % 2, 0);
}

TEST(Workload, BenchConstantsMatchPaper) {
  EXPECT_EQ(starsim::kTest2StarCount, 8192u);  // 2^13
  EXPECT_EQ(starsim::kTest1RoiSide, 10);
  EXPECT_EQ(starsim::kBenchImageEdge, 1024);
}

TEST(Workload, StarFieldsAreWellSpread) {
  // The paper's atomic-contention argument relies on scattered stars: on a
  // 1024^2 image, 1024 stars should occupy nearly as many distinct pixels.
  WorkloadConfig config;
  config.star_count = 1024;
  std::set<std::pair<int, int>> distinct;
  for (const auto& star : generate_stars(config)) {
    distinct.emplace(static_cast<int>(star.x), static_cast<int>(star.y));
  }
  EXPECT_GT(distinct.size(), 1000u);
}

}  // namespace
