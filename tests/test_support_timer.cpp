// WallTimer clock-source regression: every measured breakdown in the
// experiment harnesses assumes the stopwatch is monotonic. A switch to
// high_resolution_clock (which libstdc++ aliases to the adjustable
// system_clock on some platforms) would let NTP steps corrupt measurements,
// so the clock choice is pinned at compile time and exercised at runtime.
#include "support/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <type_traits>

namespace {

namespace sup = starsim::support;

static_assert(std::is_same_v<sup::WallTimer::Clock, std::chrono::steady_clock>,
              "WallTimer must measure with steady_clock");
static_assert(sup::WallTimer::Clock::is_steady,
              "WallTimer's clock source must be monotonic");

TEST(WallTimer, NeverRunsBackwards) {
  sup::WallTimer timer;
  double last = timer.seconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 10000; ++i) {
    const double now = timer.seconds();
    ASSERT_GE(now, last) << "iteration " << i;
    last = now;
  }
}

TEST(WallTimer, AdvancesAcrossSleep) {
  sup::WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // sleep_for may round down against a different clock; 4 ms keeps the
  // assertion robust while still catching a stuck or reset stopwatch.
  EXPECT_GE(timer.seconds(), 0.004);
  EXPECT_GE(timer.millis(), 4.0);
}

TEST(WallTimer, ResetRestartsTheStopwatch) {
  sup::WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double before_reset = timer.seconds();
  timer.reset();
  EXPECT_LT(timer.seconds(), before_reset);
}

TEST(ScopedAccumulator, AddsElapsedOnDestruction) {
  double sink = 0.0;
  {
    sup::ScopedAccumulator accumulate(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(sink, 0.0);  // nothing accrues until scope exit
  }
  EXPECT_GT(sink, 0.0);
  const double first = sink;
  { sup::ScopedAccumulator accumulate(sink); }
  EXPECT_GE(sink, first);  // accumulates, never overwrites
}

}  // namespace
