#include "starsim/psf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "starsim/cost_model.h"
#include "support/error.h"

namespace {

using starsim::FlopMeter;
using starsim::GaussianPsf;

TEST(Psf, RejectsNonPositiveSigma) {
  EXPECT_THROW(GaussianPsf(0.0), starsim::support::PreconditionError);
  EXPECT_THROW(GaussianPsf(-1.0), starsim::support::PreconditionError);
}

TEST(Psf, PeakValueIsCoefficient) {
  const GaussianPsf psf(1.7);
  EXPECT_DOUBLE_EQ(psf.intensity_rate(0.0, 0.0), psf.coefficient());
  EXPECT_DOUBLE_EQ(psf.coefficient(),
                   1.0 / (2.0 * std::numbers::pi * 1.7 * 1.7));
}

TEST(Psf, RadiallySymmetric) {
  const GaussianPsf psf(2.0);
  EXPECT_DOUBLE_EQ(psf.intensity_rate(1.0, 2.0), psf.intensity_rate(2.0, 1.0));
  EXPECT_DOUBLE_EQ(psf.intensity_rate(1.0, 2.0),
                   psf.intensity_rate(-1.0, -2.0));
  EXPECT_DOUBLE_EQ(psf.intensity_rate(3.0, 0.0), psf.intensity_rate(0.0, 3.0));
}

TEST(Psf, DecreasesWithRadius) {
  const GaussianPsf psf(1.5);
  double previous = psf.intensity_rate(0.0, 0.0);
  for (double r = 0.5; r < 10.0; r += 0.5) {
    const double v = psf.intensity_rate(r, 0.0);
    EXPECT_LT(v, previous);
    EXPECT_GT(v, 0.0);
    previous = v;
  }
}

class PsfNormalizationTest : public ::testing::TestWithParam<double> {};

// Eq. (2) integrates to 1 over the plane: a wide discrete sum over pixel
// samples must approach 1 for any sigma (point sampling at unit spacing is
// an excellent quadrature for sigma >~ 0.7).
TEST_P(PsfNormalizationTest, DiscreteSumApproachesUnity) {
  const double sigma = GetParam();
  const GaussianPsf psf(sigma);
  const int radius = static_cast<int>(std::ceil(8.0 * sigma));
  double total = 0.0;
  for (int y = -radius; y <= radius; ++y) {
    for (int x = -radius; x <= radius; ++x) {
      total += psf.intensity_rate(x, y);
    }
  }
  // Unit-spacing point sampling aliases slightly for sub-pixel sigmas
  // (Poisson summation error ~ 2 exp(-2 pi^2 sigma^2)).
  EXPECT_NEAR(total, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, PsfNormalizationTest,
                         ::testing::Values(0.8, 1.0, 1.5, 1.7, 2.5, 4.0));

TEST(Psf, IntegratedRateSumsToUnityExactly) {
  // The erf-integrated rates tile the plane: their sum over all pixels is
  // exactly 1 for any sigma, including sub-pixel ones.
  const GaussianPsf psf(0.4);
  double total = 0.0;
  for (int y = -8; y <= 8; ++y) {
    for (int x = -8; x <= 8; ++x) {
      total += psf.integrated_rate(x, y);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Psf, IntegratedRateMatchesNumericalQuadrature) {
  const GaussianPsf psf(1.3);
  // 64x64 midpoint quadrature over the pixel at offset (1.0, -2.0).
  const double dx = 1.0;
  const double dy = -2.0;
  double numeric = 0.0;
  constexpr int kN = 64;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      const double px = dx - 0.5 + (i + 0.5) / kN;
      const double py = dy - 0.5 + (j + 0.5) / kN;
      numeric += psf.intensity_rate(px, py) / (kN * kN);
    }
  }
  EXPECT_NEAR(psf.integrated_rate(dx, dy), numeric, 3e-7);
}

TEST(Psf, EnergyWithinRadiusMatchesClosedForm) {
  const GaussianPsf psf(2.0);
  EXPECT_DOUBLE_EQ(psf.energy_within_radius(0.0), 0.0);
  // r = sigma: 1 - e^-0.5.
  EXPECT_NEAR(psf.energy_within_radius(2.0), 1.0 - std::exp(-0.5), 1e-12);
  EXPECT_NEAR(psf.energy_within_radius(20.0), 1.0, 1e-9);
}

TEST(Psf, EnergyMonotoneInRadius) {
  const GaussianPsf psf(1.7);
  double previous = -1.0;
  for (double r = 0.0; r < 12.0; r += 0.25) {
    const double e = psf.energy_within_radius(r);
    EXPECT_GT(e, previous);
    previous = e;
  }
}

class RoiRadiusTest : public ::testing::TestWithParam<double> {};

TEST_P(RoiRadiusTest, RadiusForEnergyIsTight) {
  const GaussianPsf psf(GetParam());
  for (double fraction : {0.9, 0.95, 0.99, 0.999}) {
    const int r = psf.radius_for_energy(fraction);
    EXPECT_GE(psf.energy_within_radius(r), fraction);
    if (r > 1) {
      EXPECT_LT(psf.energy_within_radius(r - 1), fraction);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, RoiRadiusTest,
                         ::testing::Values(0.8, 1.5, 1.7, 3.0, 5.0));

TEST(Psf, RadiusForEnergyRejectsBadFraction) {
  const GaussianPsf psf(1.0);
  EXPECT_THROW((void)psf.radius_for_energy(0.0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)psf.radius_for_energy(1.0),
               starsim::support::PreconditionError);
}

TEST(Psf, PaperRoiRangeCoversTypicalSigmas) {
  // The paper states ROI radii are empirically 2..20 pixels; for the
  // default sigma 1.7 a 99% ROI radius must land in that window.
  const GaussianPsf psf(1.7);
  const int r = psf.radius_for_energy(0.99);
  EXPECT_GE(r, 2);
  EXPECT_LE(r, 20);
}

TEST(Psf, GaussRateMatchesIntensityRateAndCountsFlops) {
  const GaussianPsf psf(1.7);
  starsim::ArithmeticCosts costs;
  costs.exp_cost = 50.0;
  FlopMeter meter(costs);
  const double v = starsim::gauss_rate(meter, psf.coefficient(),
                                       psf.inv_two_sigma_sq(), 1.5, -2.5);
  EXPECT_DOUBLE_EQ(v, psf.intensity_rate(1.5, -2.5));
  EXPECT_EQ(meter.flops(), starsim::kGaussRateArithmeticFlops + 50u);
}

}  // namespace
