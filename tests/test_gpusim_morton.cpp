#include "gpusim/morton.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;

TEST(Morton, KnownValues) {
  EXPECT_EQ(gs::morton_encode(0, 0), 0u);
  EXPECT_EQ(gs::morton_encode(1, 0), 1u);
  EXPECT_EQ(gs::morton_encode(0, 1), 2u);
  EXPECT_EQ(gs::morton_encode(1, 1), 3u);
  EXPECT_EQ(gs::morton_encode(2, 0), 4u);
  EXPECT_EQ(gs::morton_encode(0, 2), 8u);
  EXPECT_EQ(gs::morton_encode(3, 3), 15u);
}

TEST(Morton, RoundTripExhaustiveSmall) {
  for (std::uint32_t x = 0; x < 64; ++x) {
    for (std::uint32_t y = 0; y < 64; ++y) {
      const std::uint32_t code = gs::morton_encode(x, y);
      ASSERT_EQ(gs::morton_decode_x(code), x);
      ASSERT_EQ(gs::morton_decode_y(code), y);
    }
  }
}

TEST(Morton, RoundTripRandom16Bit) {
  starsim::support::Pcg32 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t x = rng.bounded(65536);
    const std::uint32_t y = rng.bounded(65536);
    const std::uint32_t code = gs::morton_encode(x, y);
    ASSERT_EQ(gs::morton_decode_x(code), x);
    ASSERT_EQ(gs::morton_decode_y(code), y);
  }
}

TEST(Morton, EncodingIsInjectiveOnTiles) {
  // Within an 8x8 tile all 64 codes are distinct and dense in [0, 64).
  bool seen[64] = {};
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      const std::uint32_t code = gs::morton_encode(x, y);
      ASSERT_LT(code, 64u);
      ASSERT_FALSE(seen[code]);
      seen[code] = true;
    }
  }
}

TEST(Morton, PreservesTwoDimensionalLocality) {
  // The defining property the texture cache exploits: 2-D neighbors stay
  // numerically close. Any 2x2 pixel neighborhood spans at most 3 gaps in
  // code space when aligned; measure the average row-neighbor distance
  // against the row-major layout's vertical distance for a 256-wide image.
  double morton_vertical = 0.0;
  double row_major_vertical = 0.0;
  constexpr int kWidth = 256;
  for (std::uint32_t x = 0; x < 64; ++x) {
    for (std::uint32_t y = 0; y < 63; ++y) {
      morton_vertical += static_cast<double>(std::abs(
          static_cast<long>(gs::morton_encode(x, y + 1)) -
          static_cast<long>(gs::morton_encode(x, y))));
      row_major_vertical += kWidth;  // row-major vertical step
    }
  }
  // Morton's average vertical step must be far below a 256-wide row stride.
  EXPECT_LT(morton_vertical, row_major_vertical * 0.25);
}

TEST(Morton, MasksTo16Bits) {
  // Coordinates beyond 16 bits wrap into range instead of colliding UB.
  EXPECT_EQ(gs::morton_part1by1(0x10000u), 0u);
}

}  // namespace
