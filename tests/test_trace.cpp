// starsim::trace core: recorder sessions, span balance, flow stitching, the
// Chrome trace exporter/validator golden path and its tampered-trace
// negatives, and the json_lite parser the validator is built on.
//
// The recorder is a process singleton, so every test brackets its own
// session (start() drops prior events) and stops the gate on exit.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "trace/chrome_trace.h"
#include "trace/json_lite.h"

namespace {

using namespace starsim::trace;

/// RAII session bracket: fresh recording on entry, gate closed + buffers
/// dropped on exit so tests cannot leak events into each other.
struct Session {
  Session() { TraceRecorder::instance().start(); }
  ~Session() {
    TraceRecorder::instance().stop();
    TraceRecorder::instance().clear();
  }
};

TEST(TraceRecorder, SitesRecordNothingWhileDisabled) {
  TraceRecorder::instance().stop();
  TraceRecorder::instance().clear();
  EXPECT_FALSE(tracing_on());
  {
    TraceSpan span("test", "ignored");
    EXPECT_FALSE(span.armed());
    span.arg("key", 1);
  }
  instant("test", "ignored");
  counter("test", "ignored", 1.0);
  flow(Phase::kFlowStart, "test", "ignored", 42);
  EXPECT_TRUE(TraceRecorder::instance().snapshot().events.empty());
}

TEST(TraceRecorder, SpanEmitsBalancedPairWithArgsOnEnd) {
  Session session;
  {
    TraceSpan span("test", "unit");
    EXPECT_TRUE(span.armed());
    span.arg("stars", 512).arg("modeled_s", 0.25).arg("pinned", true);
    span.arg("simulator", "adaptive");
  }
  const TraceSnapshot snapshot = TraceRecorder::instance().snapshot();
  ASSERT_EQ(snapshot.events.size(), 2u);
  const TraceEvent& begin = snapshot.events[0];
  const TraceEvent& end = snapshot.events[1];
  EXPECT_EQ(begin.phase, Phase::kBegin);
  EXPECT_EQ(end.phase, Phase::kEnd);
  EXPECT_STREQ(begin.name, "unit");
  EXPECT_EQ(begin.tid, end.tid);
  EXPECT_LE(begin.ts_ns, end.ts_ns);
  EXPECT_TRUE(begin.args.empty());  // args ride on E; Chrome merges them
  ASSERT_EQ(end.args.size(), 4u);
  EXPECT_EQ(std::get<std::int64_t>(end.args[0].value), 512);
  EXPECT_DOUBLE_EQ(std::get<double>(end.args[1].value), 0.25);
  EXPECT_TRUE(std::get<bool>(end.args[2].value));
  EXPECT_EQ(std::get<std::string>(end.args[3].value), "adaptive");
}

TEST(TraceRecorder, InstantCounterAndFlowPhases) {
  Session session;
  instant("test", "tick", {{"n", std::int64_t{7}}});
  counter("test", "depth", 3.0);
  const std::uint64_t id = TraceRecorder::instance().next_flow_id();
  flow(Phase::kFlowStart, "test", "req", id);
  flow(Phase::kFlowEnd, "test", "req", id);
  flow(Phase::kFlowStart, "test", "req", 0);  // id 0 = untraced, must no-op
  const TraceSnapshot snapshot = TraceRecorder::instance().snapshot();
  ASSERT_EQ(snapshot.events.size(), 4u);
  EXPECT_EQ(snapshot.events[0].phase, Phase::kInstant);
  EXPECT_EQ(snapshot.events[1].phase, Phase::kCounter);
  ASSERT_EQ(snapshot.events[1].args.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(snapshot.events[1].args[0].value), 3.0);
  EXPECT_EQ(snapshot.events[2].phase, Phase::kFlowStart);
  EXPECT_EQ(snapshot.events[2].flow_id, id);
  EXPECT_EQ(snapshot.events[3].phase, Phase::kFlowEnd);
}

TEST(TraceRecorder, FlowIdsAreUniqueAndNonZero) {
  std::uint64_t last = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t id = TraceRecorder::instance().next_flow_id();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, last);
    last = id;
  }
}

TEST(TraceRecorder, ThreadsGetPrivateTidsAndMonotonicTimestamps) {
  Session session;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceRecorder::instance().set_thread_name("t" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test", "work");
        span.arg("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TraceSnapshot snapshot = TraceRecorder::instance().snapshot();
  EXPECT_EQ(snapshot.events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  // Per-tid order is preserved by the shard layout: timestamps never go
  // backwards within one tid, and the B/E counts balance per tid.
  std::map<std::uint32_t, std::int64_t> last_ts;
  std::map<std::uint32_t, int> depth;
  for (const TraceEvent& event : snapshot.events) {
    const auto it = last_ts.find(event.tid);
    if (it != last_ts.end()) EXPECT_LE(it->second, event.ts_ns);
    last_ts[event.tid] = event.ts_ns;
    depth[event.tid] += event.phase == Phase::kBegin ? 1 : -1;
  }
  EXPECT_EQ(last_ts.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  EXPECT_EQ(snapshot.thread_names.size(),
            static_cast<std::size_t>(kThreads));
}

TEST(TraceRecorder, StartDropsPriorSessionEvents) {
  Session session;
  instant("test", "stale");
  TraceRecorder::instance().start();
  instant("test", "fresh");
  const TraceSnapshot snapshot = TraceRecorder::instance().snapshot();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_STREQ(snapshot.events[0].name, "fresh");
}

// --- Exporter + validator golden path ------------------------------------

/// A realistic two-thread session: nested spans on the submitter, a worker
/// span, one flow stitched across both, an instant and a counter.
TraceSnapshot record_golden_session() {
  Session session;  // cleared on return; snapshot taken first
  const std::uint64_t id = TraceRecorder::instance().next_flow_id();
  TraceRecorder::instance().set_thread_name("submitter");
  {
    TraceSpan outer("serve", "submit");
    outer.arg("stars", 256);
    counter("serve", "queue_depth", 1.0);
    { TraceSpan inner("serve", "admit"); }
    flow(Phase::kFlowStart, "serve", "request", id);
  }
  std::thread worker([id] {
    TraceRecorder::instance().set_thread_name("worker-0");
    TraceSpan span("serve", "render_batch");
    span.arg("batch_size", 1);
    instant("gpusim", "block_sample");
    flow(Phase::kFlowEnd, "serve", "request", id);
  });
  worker.join();
  return TraceRecorder::instance().snapshot();
}

TEST(ChromeTrace, GoldenExportValidates) {
  const std::string json = to_chrome_json(record_golden_session());
  const TraceCheck check = validate_chrome_trace(json);
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_TRUE(check.errors.empty());
  EXPECT_EQ(check.begin_events, 3u);
  EXPECT_EQ(check.end_events, 3u);
  EXPECT_EQ(check.instant_events, 1u);
  EXPECT_EQ(check.counter_events, 1u);
  EXPECT_EQ(check.flow_ids, 1u);
  EXPECT_EQ(check.cross_thread_flows, 1u);
  EXPECT_EQ(check.threads, 2u);
  EXPECT_TRUE(check.categories.contains("serve"));
  EXPECT_TRUE(check.categories.contains("gpusim"));
  EXPECT_NE(check.summary().find("trace OK"), std::string::npos);
}

TEST(ChromeTrace, WriteRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "starsim_trace_golden.json";
  write_chrome_trace(path, record_golden_session());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const TraceCheck check = validate_chrome_trace(buffer.str());
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_EQ(check.cross_thread_flows, 1u);
}

TEST(ChromeTrace, ThreadNamesExportAsMetadata) {
  const std::string json = to_chrome_json(record_golden_session());
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find("submitter"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlCharactersInStrings) {
  TraceSnapshot snapshot;
  TraceEvent event;
  event.phase = Phase::kInstant;
  event.category = "test";
  event.name = "escapes";
  event.args.push_back({"text", std::string("line\n\"quoted\"\ttab\x01")});
  snapshot.events.push_back(event);
  const std::string json = to_chrome_json(snapshot);
  EXPECT_NE(json.find(R"(line\n\"quoted\"\ttab\u0001)"),
            std::string::npos);
  EXPECT_TRUE(validate_chrome_trace(json).ok);
}

// --- Tampered-trace negatives --------------------------------------------

TraceEvent make_event(Phase phase, std::int64_t ts_ns, std::uint32_t tid,
                      const char* name = "slice",
                      std::uint64_t flow_id = 0) {
  TraceEvent event;
  event.phase = phase;
  event.category = "test";
  event.name = name;
  event.ts_ns = ts_ns;
  event.tid = tid;
  event.flow_id = flow_id;
  return event;
}

TEST(ChromeTraceValidator, DetectsUnclosedSlice) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(make_event(Phase::kBegin, 1000, 0));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("unclosed"), std::string::npos);
}

TEST(ChromeTraceValidator, DetectsEndWithoutBegin) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(make_event(Phase::kEnd, 1000, 0));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("E without matching B"),
            std::string::npos);
}

TEST(ChromeTraceValidator, DetectsMisnestedSlices) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(make_event(Phase::kBegin, 1000, 0, "outer"));
  snapshot.events.push_back(make_event(Phase::kEnd, 2000, 0, "wrong"));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("closes open slice"),
            std::string::npos);
}

TEST(ChromeTraceValidator, DetectsBackwardsTimestamps) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(make_event(Phase::kInstant, 2000, 0));
  snapshot.events.push_back(make_event(Phase::kInstant, 1000, 0));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("went backwards"), std::string::npos);
}

TEST(ChromeTraceValidator, AcceptsBackwardsTimestampsAcrossThreads) {
  // Monotonicity is a per-thread invariant: shard concatenation interleaves
  // absolute times across tids and that is fine.
  TraceSnapshot snapshot;
  snapshot.events.push_back(make_event(Phase::kInstant, 2000, 0));
  snapshot.events.push_back(make_event(Phase::kInstant, 1000, 1));
  EXPECT_TRUE(validate_chrome_trace(to_chrome_json(snapshot)).ok);
}

TEST(ChromeTraceValidator, DetectsUnfinishedFlow) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(
      make_event(Phase::kFlowStart, 1000, 0, "request", 7));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("never finishes"), std::string::npos);
}

TEST(ChromeTraceValidator, DetectsFlowEndWithoutStart) {
  TraceSnapshot snapshot;
  snapshot.events.push_back(
      make_event(Phase::kFlowEnd, 1000, 0, "request", 7));
  const TraceCheck check = validate_chrome_trace(to_chrome_json(snapshot));
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("finishes without start"),
            std::string::npos);
}

TEST(ChromeTraceValidator, RejectsMalformedJsonWithoutThrowing) {
  const TraceCheck check = validate_chrome_trace("{\"traceEvents\":[");
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.errors.empty());
  EXPECT_NE(check.summary().find("trace INVALID"), std::string::npos);
}

TEST(ChromeTraceValidator, RejectsDocumentWithoutTraceEvents) {
  const TraceCheck check = validate_chrome_trace("{}");
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors.front().find("missing traceEvents"),
            std::string::npos);
}

// --- json_lite ------------------------------------------------------------

TEST(JsonLite, ParsesScalarsAndEscapes) {
  EXPECT_DOUBLE_EQ(parse_json("42.5").as_number(), 42.5);
  EXPECT_DOUBLE_EQ(parse_json("-1e3").as_number(), -1000.0);
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
}

TEST(JsonLite, ParsesNestedStructures) {
  const JsonValue document =
      parse_json(R"({"events":[{"ph":"B","ts":1.5}],"count":1})");
  ASSERT_TRUE(document.is_object());
  const JsonValue* events = document.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 1u);
  const JsonValue* ph = events->as_array()[0].find("ph");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->as_string(), "B");
  EXPECT_DOUBLE_EQ(events->as_array()[0].find("ts")->as_number(), 1.5);
  EXPECT_EQ(document.find("missing"), nullptr);
}

TEST(JsonLite, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), starsim::support::Error);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), starsim::support::Error);
  EXPECT_THROW((void)parse_json("[1 2]"), starsim::support::Error);
  EXPECT_THROW((void)parse_json("1 2"), starsim::support::Error);
  EXPECT_THROW((void)parse_json("nope"), starsim::support::Error);
  EXPECT_THROW((void)parse_json("\"open"), starsim::support::Error);
}

TEST(JsonLite, TypeMismatchesThrow) {
  const JsonValue value = parse_json("[1]");
  EXPECT_THROW((void)value.as_object(), starsim::support::Error);
  EXPECT_THROW((void)value.as_string(), starsim::support::Error);
  EXPECT_EQ(value.find("key"), nullptr);  // non-objects find nothing
}

}  // namespace
