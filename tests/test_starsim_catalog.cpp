#include "starsim/catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "support/error.h"

namespace {

using starsim::Catalog;
using starsim::CatalogStar;

TEST(Catalog, SynthesizesRequestedCount) {
  const Catalog catalog = Catalog::synthesize(5000, 1);
  EXPECT_EQ(catalog.size(), 5000u);
}

TEST(Catalog, RejectsDegenerateInputs) {
  EXPECT_THROW((void)Catalog::synthesize(0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)Catalog::synthesize(10, 1, 5.0, 5.0),
               starsim::support::PreconditionError);
}

TEST(Catalog, CoordinatesInValidRanges) {
  const Catalog catalog = Catalog::synthesize(20000, 2);
  for (const CatalogStar& star : catalog.stars()) {
    ASSERT_GE(star.right_ascension, 0.0);
    ASSERT_LT(star.right_ascension, 2.0 * std::numbers::pi);
    ASSERT_GE(star.declination, -std::numbers::pi / 2);
    ASSERT_LE(star.declination, std::numbers::pi / 2);
    ASSERT_GE(star.magnitude, 0.0);
    ASSERT_LE(star.magnitude, 7.0);
  }
}

TEST(Catalog, DeterministicBySeed) {
  const Catalog a = Catalog::synthesize(100, 7);
  const Catalog b = Catalog::synthesize(100, 7);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.stars()[i].right_ascension, b.stars()[i].right_ascension);
    EXPECT_EQ(a.stars()[i].magnitude, b.stars()[i].magnitude);
  }
}

TEST(Catalog, DirectionsAreUnitVectors) {
  const Catalog catalog = Catalog::synthesize(1000, 3);
  for (const CatalogStar& star : catalog.stars()) {
    ASSERT_NEAR(star.direction().norm(), 1.0, 1e-12);
  }
}

TEST(Catalog, SphereCoverageIsUniform) {
  // Uniform sphere density => sin(dec) uniform in [-1, 1]: both hemispheres
  // and the |sin dec| < 0.5 band each hold ~half the stars.
  const Catalog catalog = Catalog::synthesize(50000, 4);
  int north = 0;
  int band = 0;
  for (const CatalogStar& star : catalog.stars()) {
    if (star.declination > 0) ++north;
    if (std::abs(std::sin(star.declination)) < 0.5) ++band;
  }
  EXPECT_NEAR(north / 50000.0, 0.5, 0.02);
  EXPECT_NEAR(band / 50000.0, 0.5, 0.02);
}

TEST(Catalog, MagnitudeLawHasCorrectSlope) {
  // log10 N(<m) must grow at ~0.51 dex per magnitude: N(<6)/N(<5) ~ 3.24.
  const Catalog catalog = Catalog::synthesize(200000, 5);
  const double n5 = static_cast<double>(catalog.count_brighter_than(5.0));
  const double n6 = static_cast<double>(catalog.count_brighter_than(6.0));
  const double ratio = n6 / n5;
  EXPECT_NEAR(std::log10(ratio), Catalog::kMagnitudeSlope, 0.05);
}

TEST(Catalog, FaintStarsDominate) {
  const Catalog catalog = Catalog::synthesize(10000, 6);
  // More stars in the faintest magnitude unit than in the brightest.
  const auto faint = catalog.size() - catalog.count_brighter_than(6.0);
  const auto bright = catalog.count_brighter_than(1.0);
  EXPECT_GT(faint, bright * 10);
}

TEST(Catalog, CustomMagnitudeRangeRespected) {
  const Catalog catalog = Catalog::synthesize(1000, 7, 2.0, 4.0);
  for (const CatalogStar& star : catalog.stars()) {
    ASSERT_GE(star.magnitude, 2.0);
    ASSERT_LE(star.magnitude, 4.0);
  }
}

TEST(CatalogStarTest, DirectionMatchesSphericalCoordinates) {
  CatalogStar star;
  star.right_ascension = 0.0;
  star.declination = 0.0;
  EXPECT_NEAR(star.direction().x, 1.0, 1e-15);
  star.right_ascension = std::numbers::pi / 2;
  EXPECT_NEAR(star.direction().y, 1.0, 1e-15);
  star.declination = std::numbers::pi / 2;
  EXPECT_NEAR(star.direction().z, 1.0, 1e-15);
}

}  // namespace
