#include "gpusim/dim.h"

#include <gtest/gtest.h>

namespace {

using starsim::gpusim::Dim3;
using starsim::gpusim::LaunchConfig;

TEST(Dim3, DefaultsToUnit) {
  Dim3 d;
  EXPECT_EQ(d.x, 1u);
  EXPECT_EQ(d.y, 1u);
  EXPECT_EQ(d.z, 1u);
  EXPECT_EQ(d.count(), 1u);
}

TEST(Dim3, CountMultipliesComponents) {
  EXPECT_EQ(Dim3(4, 5, 6).count(), 120u);
  EXPECT_EQ(Dim3(65535, 65535).count(), 65535ull * 65535ull);
}

TEST(Dim3, LinearIsRowMajor) {
  const Dim3 extent(4, 3, 2);
  EXPECT_EQ(extent.linear(Dim3(0, 0, 0)), 0u);
  EXPECT_EQ(extent.linear(Dim3(1, 0, 0)), 1u);
  EXPECT_EQ(extent.linear(Dim3(0, 1, 0)), 4u);
  EXPECT_EQ(extent.linear(Dim3(0, 0, 1)), 12u);
  EXPECT_EQ(extent.linear(Dim3(3, 2, 1)), 23u);
}

class DimRoundTripTest : public ::testing::TestWithParam<Dim3> {};

TEST_P(DimRoundTripTest, DelinearizeInvertsLinear) {
  const Dim3 extent = GetParam();
  for (std::uint64_t flat = 0; flat < extent.count(); ++flat) {
    const Dim3 idx = extent.delinearize(flat);
    ASSERT_LT(idx.x, extent.x);
    ASSERT_LT(idx.y, extent.y);
    ASSERT_LT(idx.z, extent.z);
    ASSERT_EQ(extent.linear(idx), flat);
  }
}

INSTANTIATE_TEST_SUITE_P(Extents, DimRoundTripTest,
                         ::testing::Values(Dim3(1), Dim3(7), Dim3(4, 3),
                                           Dim3(3, 4, 2), Dim3(1, 1, 5),
                                           Dim3(16, 16)));

TEST(Dim3, ToStringFormats) {
  EXPECT_EQ(to_string(Dim3(1, 2, 3)), "(1, 2, 3)");
}

TEST(LaunchConfig, CountsThreadsAndBlocks) {
  LaunchConfig config;
  config.grid = Dim3(8, 2);
  config.block = Dim3(10, 10);
  EXPECT_EQ(config.total_blocks(), 16u);
  EXPECT_EQ(config.threads_per_block(), 100u);
  EXPECT_EQ(config.total_threads(), 1600u);
}

}  // namespace
