#include "gpusim/occupancy.h"

#include <gtest/gtest.h>

namespace {

namespace gs = starsim::gpusim;

gs::LaunchConfig config_of(std::uint32_t blocks, std::uint32_t threads) {
  gs::LaunchConfig c;
  c.grid = gs::Dim3(blocks);
  c.block = gs::Dim3(threads);
  return c;
}

TEST(Occupancy, WarpsPerBlockRoundUp) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(1, 32)).warps_per_block, 1u);
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(1, 33)).warps_per_block, 2u);
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(1, 100)).warps_per_block, 4u);
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(1, 1024)).warps_per_block,
            32u);
}

TEST(Occupancy, ResidencyLimitedByWarpBudget) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();  // 48 warps, 8 blocks
  // 4-warp blocks: warp budget allows 12, block slots cap at 8.
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(100, 128))
                .resident_blocks_per_sm,
            8);
  // 16-warp blocks: 48/16 = 3 blocks.
  EXPECT_EQ(gs::compute_occupancy(spec, config_of(100, 512))
                .resident_blocks_per_sm,
            3);
}

TEST(Occupancy, HugeBlockStillResidesOnce) {
  gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  spec.max_resident_warps_per_sm = 24;
  // 32-warp block exceeds the 24-warp budget; clamp to one resident block.
  const gs::Occupancy occ = gs::compute_occupancy(spec, config_of(10, 1024));
  EXPECT_EQ(occ.resident_blocks_per_sm, 1);
  EXPECT_EQ(occ.resident_warps_per_sm, 24);
}

TEST(Occupancy, SmallGridLimitsConcurrentWarps) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const gs::Occupancy occ = gs::compute_occupancy(spec, config_of(4, 100));
  EXPECT_DOUBLE_EQ(occ.concurrent_warps, 16.0);  // 4 blocks x 4 warps
}

TEST(Occupancy, UtilizationRampsWithBlocks) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  double previous = 0.0;
  for (std::uint32_t blocks : {1u, 8u, 32u, 128u, 512u, 4096u}) {
    const double u =
        gs::compute_occupancy(spec, config_of(blocks, 100)).utilization;
    EXPECT_GE(u, previous);
    previous = u;
  }
  EXPECT_DOUBLE_EQ(previous, 1.0);  // saturated at large grids
}

TEST(Occupancy, UtilizationCapsAtOne) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const gs::Occupancy occ = gs::compute_occupancy(spec, config_of(100000, 1024));
  EXPECT_DOUBLE_EQ(occ.utilization, 1.0);
}

TEST(Occupancy, SaturationPointMatchesSpec) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  // Exactly saturation_warps concurrent warps -> utilization 1.
  // 360 warps = 90 blocks of 4 warps on the GTX480 (15 SMs x 24).
  const gs::Occupancy occ = gs::compute_occupancy(spec, config_of(90, 128));
  EXPECT_DOUBLE_EQ(occ.concurrent_warps, 360.0);
  EXPECT_DOUBLE_EQ(occ.utilization, 1.0);
  const gs::Occupancy under = gs::compute_occupancy(spec, config_of(45, 128));
  EXPECT_DOUBLE_EQ(under.utilization, 0.5);
}

}  // namespace
