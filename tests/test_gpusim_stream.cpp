#include "gpusim/stream.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using Engine = gs::StreamScheduler::Engine;

TEST(StreamScheduler, SingleStreamSerializes) {
  gs::StreamScheduler sched(1);
  const gs::StreamId s = sched.create_stream();
  EXPECT_DOUBLE_EQ(sched.enqueue_h2d(s, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(sched.enqueue_kernel(s, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(sched.enqueue_d2h(s, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(sched.makespan(), 3.5);
  EXPECT_DOUBLE_EQ(sched.stream_end(s), 3.5);
}

TEST(StreamScheduler, TwoStreamsOverlapCopyAndCompute) {
  gs::StreamScheduler sched(1);
  const gs::StreamId a = sched.create_stream();
  const gs::StreamId b = sched.create_stream();
  // a: copy [0,1], kernel [1,3]; b: copy [1,2] (engine busy until 1),
  // kernel [3,5] (compute busy until 3).
  (void)sched.enqueue_h2d(a, 1.0);
  (void)sched.enqueue_kernel(a, 2.0);
  EXPECT_DOUBLE_EQ(sched.enqueue_h2d(b, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(sched.enqueue_kernel(b, 2.0), 5.0);
  // Serial would be 6; overlap saves one copy slot.
  EXPECT_DOUBLE_EQ(sched.makespan(), 5.0);
}

TEST(StreamScheduler, SingleCopyEngineSerializesBothDirections) {
  gs::StreamScheduler sched(1);
  const gs::StreamId a = sched.create_stream();
  const gs::StreamId b = sched.create_stream();
  (void)sched.enqueue_h2d(a, 1.0);
  // D2H on another stream shares the single engine: starts at 1.
  EXPECT_DOUBLE_EQ(sched.enqueue_d2h(b, 1.0), 2.0);
}

TEST(StreamScheduler, DualCopyEnginesRunDirectionsConcurrently) {
  gs::StreamScheduler sched(2);
  const gs::StreamId a = sched.create_stream();
  const gs::StreamId b = sched.create_stream();
  (void)sched.enqueue_h2d(a, 1.0);
  EXPECT_DOUBLE_EQ(sched.enqueue_d2h(b, 1.0), 1.0);  // concurrent
  EXPECT_DOUBLE_EQ(sched.makespan(), 1.0);
}

TEST(StreamScheduler, DepthFirstIssueHitsTheFalseDependency) {
  // Fermi's copy-engine pitfall, reproduced: issuing each frame's readback
  // before the next frame's upload blocks the (FIFO) copy engine behind a
  // transfer that is waiting on a kernel — the pipeline degenerates to
  // fully serial execution despite using two streams.
  gs::StreamScheduler sched(1);
  const gs::StreamId s0 = sched.create_stream();
  const gs::StreamId s1 = sched.create_stream();
  constexpr int kFrames = 50;
  for (int f = 0; f < kFrames; ++f) {
    const gs::StreamId s = (f % 2 == 0) ? s0 : s1;
    (void)sched.enqueue_h2d(s, 1.0);
    (void)sched.enqueue_kernel(s, 1.0);
    (void)sched.enqueue_d2h(s, 1.0);
  }
  EXPECT_DOUBLE_EQ(sched.makespan(), 150.0);  // fully serial
}

TEST(StreamScheduler, SoftwarePipelinedIssueIsEngineBound) {
  // The fix: prefetch frame f+1's upload before frame f's kernel/readback.
  // The copy engine then carries 2 units per frame back-to-back and binds
  // the makespan at ~100 (+ fill/drain), not 150.
  gs::StreamScheduler sched(1);
  const gs::StreamId s0 = sched.create_stream();
  const gs::StreamId s1 = sched.create_stream();
  constexpr int kFrames = 50;
  auto stream_of = [&](int f) { return (f % 2 == 0) ? s0 : s1; };
  (void)sched.enqueue_h2d(stream_of(0), 1.0);
  for (int f = 0; f < kFrames; ++f) {
    if (f + 1 < kFrames) (void)sched.enqueue_h2d(stream_of(f + 1), 1.0);
    (void)sched.enqueue_kernel(stream_of(f), 1.0);
    (void)sched.enqueue_d2h(stream_of(f), 1.0);
  }
  EXPECT_LT(sched.makespan(), 105.0);
  EXPECT_GE(sched.makespan(), 100.0);
  EXPECT_DOUBLE_EQ(sched.engine_busy(Engine::kCopyH2D), 100.0);
  EXPECT_DOUBLE_EQ(sched.engine_busy(Engine::kCompute), 50.0);
}

TEST(StreamScheduler, KernelBoundPipelineHidesCopies) {
  gs::StreamScheduler sched(2);
  const gs::StreamId s0 = sched.create_stream();
  const gs::StreamId s1 = sched.create_stream();
  constexpr int kFrames = 20;
  for (int f = 0; f < kFrames; ++f) {
    const gs::StreamId s = (f % 2 == 0) ? s0 : s1;
    (void)sched.enqueue_h2d(s, 0.1);
    (void)sched.enqueue_kernel(s, 1.0);
    (void)sched.enqueue_d2h(s, 0.1);
  }
  // Compute is the bottleneck: makespan ~ 20 + fill/drain.
  EXPECT_LT(sched.makespan(), 20.0 + 0.5);
  EXPECT_GE(sched.makespan(), 20.0);
}

TEST(StreamScheduler, ZeroDurationOpsAreFree) {
  gs::StreamScheduler sched(1);
  const gs::StreamId s = sched.create_stream();
  EXPECT_DOUBLE_EQ(sched.enqueue_kernel(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.0);
}

TEST(StreamScheduler, ResetClearsTimeKeepsStreams) {
  gs::StreamScheduler sched(1);
  const gs::StreamId s = sched.create_stream();
  (void)sched.enqueue_kernel(s, 5.0);
  sched.reset();
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.0);
  EXPECT_EQ(sched.stream_count(), 1u);
  EXPECT_DOUBLE_EQ(sched.enqueue_kernel(s, 1.0), 1.0);
}

TEST(StreamScheduler, RejectsInvalidInputs) {
  EXPECT_THROW(gs::StreamScheduler(0), starsim::support::PreconditionError);
  EXPECT_THROW(gs::StreamScheduler(3), starsim::support::PreconditionError);
  gs::StreamScheduler sched(1);
  EXPECT_THROW((void)sched.enqueue_kernel(gs::StreamId{}, 1.0),
               starsim::support::PreconditionError);
  const gs::StreamId s = sched.create_stream();
  EXPECT_THROW((void)sched.enqueue_kernel(s, -1.0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)sched.stream_end(gs::StreamId{7}),
               starsim::support::PreconditionError);
}

}  // namespace
