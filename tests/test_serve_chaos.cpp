// Chaos harness for the serving stack: seeded fault injection at every
// device site (including device loss) under concurrent submitters.
//
// The contract under chaos is threefold: every admitted future resolves
// (a frame or a typed error — never a hang), every surviving frame is
// bit-identical to a direct Simulator render of the same inputs by the
// simulator that actually executed it, and the supervisor keeps the
// service alive (device replacement -> retire -> CPU fallback) without a
// restart. Fault schedules are seeded, so each scenario replays the same
// decisions run after run; the scripted tests below (rate = 1.0) pin the
// exact supervision ladder transition by transition.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gpusim/fault_injector.h"
#include "imageio/image.h"
#include "serve/worker_pool.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::OpenMpSimulator;
using starsim::ParallelSimulator;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::ImageF;
using starsim::imageio::max_abs_difference;
using starsim::serve::Batch;
using starsim::serve::FrameService;
using starsim::serve::FrameServiceOptions;
using starsim::serve::PoolHealth;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::RequestPriority;
using starsim::serve::ServiceStats;
using starsim::serve::Worker;
using starsim::serve::WorkerOptions;
using starsim::serve::WorkerPool;
using starsim::serve::WorkerState;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 10;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest pinned_request(const StarField& stars, SimulatorKind kind) {
  RenderRequest request;
  request.scene = small_scene();
  request.stars = stars;
  request.simulator = kind;
  return request;
}

/// Direct (no service, no faults) renders of every field by every simulator
/// a resilient kParallel worker can end up executing — the bit-identity
/// oracle for whatever the chaos run degrades to.
struct ReferenceSet {
  std::vector<ImageF> parallel;
  std::vector<ImageF> cpu_parallel;
  std::vector<ImageF> sequential;

  explicit ReferenceSet(const std::vector<StarField>& fields) {
    OpenMpSimulator omp;
    SequentialSimulator seq;
    for (const StarField& stars : fields) {
      gs::Device device(gs::DeviceSpec::gtx480());
      parallel.push_back(
          ParallelSimulator(device).simulate(small_scene(), stars).image);
      cpu_parallel.push_back(omp.simulate(small_scene(), stars).image);
      sequential.push_back(seq.simulate(small_scene(), stars).image);
    }
  }

  [[nodiscard]] const ImageF& image(SimulatorKind kind, std::size_t i) const {
    switch (kind) {
      case SimulatorKind::kParallel: return parallel[i];
      case SimulatorKind::kCpuParallel: return cpu_parallel[i];
      case SimulatorKind::kSequential: return sequential[i];
      default: ADD_FAILURE() << "unexpected executed kind"; return parallel[i];
    }
  }
};

// --- The chaos run: concurrent submitters vs injected faults -----------------

TEST(ServeChaos, EveryAdmittedFutureResolvesAndSurvivingFramesAreExact) {
  constexpr int kSubmitters = 4;
  constexpr std::size_t kFields = 12;

  std::vector<StarField> fields;
  for (std::size_t i = 0; i < kFields; ++i) {
    fields.push_back(random_stars(3000 + i, 40));
  }
  const ReferenceSet references(fields);

  FrameServiceOptions options;
  options.workers = 2;
  options.max_batch_size = 4;
  options.queue_capacity = 64;
  options.cache_capacity = 0;  // every admitted request exercises a worker
  options.worker.resilient = true;  // faulted frames degrade, not fail
  options.worker.fault_policy = gs::FaultPolicy::chaos(
      /*rate=*/0.15, /*lost_rate=*/0.25, /*seed=*/2024);
  FrameService service(std::move(options));

  // Each submitter pushes every field with a rotating priority; every sixth
  // request carries an already-expired deadline — a deterministic slice of
  // traffic that must fail typed (DeadlineExceededError), never render, and
  // still count as resolved.
  struct Submitted {
    std::size_t field = 0;
    bool pre_expired = false;
    std::future<RenderResponse> future;
  };
  std::vector<std::vector<Submitted>> per_thread(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kFields; ++i) {
        RenderRequest request =
            pinned_request(fields[i], SimulatorKind::kParallel);
        request.priority = static_cast<RequestPriority>(i % 3);
        Submitted entry;
        entry.field = i;
        entry.pre_expired = (i % 6) == 5;
        if (entry.pre_expired) {
          request.deadline_s = 0.0;
        } else if (i % 2 == 0) {
          request.deadline_s = 30.0;  // generous: exercised, never missed
        }
        entry.future = service.submit(std::move(request));
        per_thread[static_cast<std::size_t>(t)].push_back(std::move(entry));
      }
    });
  }
  for (auto& t : submitters) t.join();

  std::uint64_t frames = 0;
  std::uint64_t pre_expired = 0;
  for (auto& thread_entries : per_thread) {
    for (Submitted& entry : thread_entries) {
      ASSERT_TRUE(entry.future.valid());
      try {
        const RenderResponse response = entry.future.get();
        EXPECT_FALSE(entry.pre_expired);
        ASSERT_NE(response.result, nullptr);
        // Bit-identity against the simulator that actually ran the frame;
        // the degraded flag must agree with the substitution.
        EXPECT_EQ(max_abs_difference(
                      response.result->image,
                      references.image(response.simulator, entry.field)),
                  0.0);
        EXPECT_EQ(response.degraded,
                  response.simulator != SimulatorKind::kParallel);
        ++frames;
      } catch (const starsim::support::DeadlineExceededError&) {
        EXPECT_TRUE(entry.pre_expired);
        ++pre_expired;
      }
      // Any other exception type escapes and fails the test: under this
      // policy the resilient chain's CPU rungs complete every live frame.
    }
  }

  service.stop();
  const ServiceStats stats = service.stats();
  constexpr std::uint64_t kTotal = kSubmitters * kFields;
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(frames + pre_expired, kTotal);
  EXPECT_EQ(stats.completed, frames);
  EXPECT_EQ(stats.failed, pre_expired);
  EXPECT_EQ(stats.expired_admission, pre_expired);
  EXPECT_EQ(stats.in_flight(), 0u) << "stuck futures after quiesce";
  EXPECT_EQ(stats.sink_exceptions, 0u);

  const PoolHealth health = service.health();
  EXPECT_EQ(health.workers.size(), 2u);
  EXPECT_GE(health.total_quarantines, health.total_device_replacements);
  EXPECT_GE(health.active_workers, 1);
}

TEST(ServeChaos, DeviceLossIsSurvivedByReplacementWithoutRestart) {
  constexpr std::size_t kRequests = 30;

  FrameServiceOptions options;
  options.workers = 1;  // one worker + sync submits => one deterministic
                        // consult sequence for the seeded injector
  options.cache_capacity = 0;
  options.worker.supervision.max_device_replacements = 20;
  // Every injected fault escalates to device loss; at 5% per consult the
  // seeded schedule interleaves losses with healthy renders.
  options.worker.fault_policy =
      gs::FaultPolicy::chaos(/*rate=*/0.05, /*lost_rate=*/1.0, /*seed=*/7);
  FrameService service(std::move(options));

  std::size_t losses = 0;
  std::size_t successes = 0;
  std::optional<std::size_t> first_loss;
  bool recovered_on_gpu = false;
  for (std::size_t i = 0; i < kRequests; ++i) {
    try {
      const RenderResponse response = service.render(
          pinned_request(random_stars(8000 + i, 30), SimulatorKind::kParallel));
      ++successes;
      if (first_loss.has_value() && !response.degraded &&
          response.simulator == SimulatorKind::kParallel) {
        recovered_on_gpu = true;  // a fresh device rendered after a loss
      }
    } catch (const starsim::support::DeviceLostError&) {
      ++losses;
      if (!first_loss.has_value()) first_loss = i;
    }
  }

  EXPECT_EQ(losses + successes, kRequests);
  EXPECT_GE(losses, 1u) << "fault schedule injected no device loss";
  EXPECT_TRUE(recovered_on_gpu)
      << "no healthy GPU render after a device replacement";

  const PoolHealth health = service.health();
  ASSERT_EQ(health.workers.size(), 1u);
  // Each loss quarantines once and is repaired by one fresh device; the
  // budget (20) is far above the schedule's loss count, so the worker never
  // retires or degrades.
  EXPECT_EQ(health.total_device_replacements, static_cast<int>(losses));
  EXPECT_EQ(health.total_quarantines, static_cast<int>(losses));
  EXPECT_EQ(health.workers[0].state, WorkerState::kHealthy);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(stats.completed, successes);
  EXPECT_EQ(stats.failed, losses);
}

// --- Scripted supervision ladder (rate = 1.0: exact, transition by
// --- transition) -------------------------------------------------------------

TEST(ServeChaos, BudgetExhaustionFallsBackToCpuOnLastWorker) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 8;
  options.worker.supervision.max_device_replacements = 1;
  // Every device consult faults and every fault kills the device: render 1
  // spends the single replacement, render 2 exhausts the budget on the last
  // active worker, which must fall back to CPU instead of retiring.
  options.worker.fault_policy =
      gs::FaultPolicy::chaos(/*rate=*/1.0, /*lost_rate=*/1.0, /*seed=*/1);
  FrameService service(std::move(options));

  const StarField stars = random_stars(42, 25);
  EXPECT_THROW(
      (void)service.render(pinned_request(stars, SimulatorKind::kParallel)),
      starsim::support::DeviceLostError);
  EXPECT_THROW(
      (void)service.render(pinned_request(stars, SimulatorKind::kParallel)),
      starsim::support::DeviceLostError);

  const RenderResponse degraded =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_EQ(degraded.simulator, SimulatorKind::kCpuParallel);
  EXPECT_TRUE(degraded.degraded);

  // A degraded frame must not be cached under the request's fingerprint: a
  // later identical request re-renders instead of replaying the fallback.
  const RenderResponse again =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_FALSE(again.from_cache);

  const PoolHealth health = service.health();
  ASSERT_EQ(health.workers.size(), 1u);
  EXPECT_EQ(health.workers[0].state, WorkerState::kCpuFallback);
  EXPECT_EQ(to_string(health.workers[0].state), "cpu-fallback");
  EXPECT_EQ(health.workers[0].device_replacements, 1);
  EXPECT_EQ(health.workers[0].quarantines, 2);
  EXPECT_EQ(health.active_workers, 1);
  EXPECT_TRUE(health.degraded());
}

TEST(ServeChaos, BudgetExhaustionRetiresWorkerWhileOthersRemain) {
  FrameServiceOptions options;
  options.workers = 2;
  options.cache_capacity = 0;
  options.worker.supervision.max_device_replacements = 0;  // first loss decides
  options.worker.fault_policy =
      gs::FaultPolicy::chaos(/*rate=*/1.0, /*lost_rate=*/1.0, /*seed=*/2);
  FrameService service(std::move(options));

  // First loss retires a worker (capacity survives elsewhere); second loss
  // hits the now-last worker, which falls back to CPU; from then on frames
  // keep flowing, degraded.
  EXPECT_THROW((void)service.render(pinned_request(random_stars(50, 20),
                                                   SimulatorKind::kParallel)),
               starsim::support::DeviceLostError);
  EXPECT_THROW((void)service.render(pinned_request(random_stars(51, 20),
                                                   SimulatorKind::kParallel)),
               starsim::support::DeviceLostError);
  const RenderResponse response = service.render(
      pinned_request(random_stars(52, 20), SimulatorKind::kParallel));
  EXPECT_EQ(response.simulator, SimulatorKind::kCpuParallel);
  EXPECT_TRUE(response.degraded);

  const PoolHealth health = service.health();
  ASSERT_EQ(health.workers.size(), 2u);
  int retired = 0;
  int fallback = 0;
  for (const auto& worker : health.workers) {
    retired += worker.state == WorkerState::kRetired ? 1 : 0;
    fallback += worker.state == WorkerState::kCpuFallback ? 1 : 0;
  }
  EXPECT_EQ(retired, 1);
  EXPECT_EQ(fallback, 1);
  EXPECT_EQ(health.active_workers, 1);
  EXPECT_EQ(health.total_device_replacements, 0);

  // Shutdown still quiesces cleanly with a retired worker in the pool.
  service.stop();
  EXPECT_EQ(service.stats().in_flight(), 0u);
}

TEST(ServeChaos, CircuitBreakerReplacesSuspectDeviceWithoutLoss) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 0;
  options.worker.supervision.max_device_replacements = 1;
  options.worker.supervision.circuit_breaker_threshold = 2;
  // Kernel launches always time out but the device never latches as lost:
  // only the consecutive-failure breaker can declare it suspect.
  gs::FaultPolicy policy;
  policy.kernel_timeout_rate = 1.0;
  options.worker.fault_policy = policy;
  FrameService service(std::move(options));

  // Failures 1-2 trip the breaker (replacement #1, streak resets); failures
  // 3-4 trip it again with the budget spent, so the last worker falls back
  // to CPU; render 5 succeeds there.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_THROW(
        (void)service.render(pinned_request(random_stars(60 + i, 20),
                                            SimulatorKind::kParallel)),
        starsim::support::KernelTimeoutError);
  }
  const RenderResponse response = service.render(
      pinned_request(random_stars(64, 20), SimulatorKind::kParallel));
  EXPECT_EQ(response.simulator, SimulatorKind::kCpuParallel);

  // The last batch's accounting lands after its promise resolves; join the
  // workers so the health snapshot is final.
  service.stop();
  const PoolHealth health = service.health();
  ASSERT_EQ(health.workers.size(), 1u);
  EXPECT_EQ(health.workers[0].state, WorkerState::kCpuFallback);
  EXPECT_EQ(health.workers[0].quarantines, 2);
  EXPECT_EQ(health.workers[0].device_replacements, 1);
  EXPECT_EQ(health.workers[0].batches_failed, 4u);
  EXPECT_EQ(health.workers[0].batches_ok, 1u);
}

// --- Sink exception accounting (the silent-swallow fix) ----------------------

TEST(ServeChaos, WorkerPoolCountsSinkExceptionsAndSurvives) {
  std::atomic<int> batches_served{0};
  WorkerOptions options;
  options.supervision.circuit_breaker_threshold = 0;  // isolate the counter
  WorkerPool pool(
      1, options,
      [&]() -> std::optional<Batch> {
        if (batches_served.fetch_add(1) >= 3) return std::nullopt;
        return Batch{};
      },
      [](Batch&&, Worker&) -> bool {
        throw std::runtime_error("sink bug: promise delivery skipped");
      });
  pool.join();

  // Three throwing batches: each is counted and logged, none kills the
  // worker thread (it drained the source to exhaustion).
  EXPECT_EQ(pool.sink_exceptions(), 3u);
  const PoolHealth health = pool.health();
  ASSERT_EQ(health.workers.size(), 1u);
  EXPECT_EQ(health.workers[0].batches_failed, 3u);
  EXPECT_EQ(health.workers[0].batches_ok, 0u);
  EXPECT_EQ(health.sink_exceptions, 3u);
}

}  // namespace
