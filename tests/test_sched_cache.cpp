// ScheduleCache — LRU behavior and the all-or-nothing persistence contract:
// a corrupted, truncated, version-skewed or wrong-device warm-start file is
// rejected whole, leaving the in-memory cache untouched.
#include "sched/cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "gpusim/device_spec.h"
#include "sched/schedule.h"

namespace {

namespace sched = starsim::sched;
namespace gs = starsim::gpusim;
using sched::CachedSchedule;
using sched::ScheduleCache;

constexpr std::uint64_t kDevice = 0xdeadbeefcafef00dull;

CachedSchedule entry_of(starsim::SimulatorKind kind, double modeled_s) {
  CachedSchedule entry;
  entry.schedule.simulator = kind;
  entry.schedule.tile_side = kind == starsim::SimulatorKind::kParallel ? 5 : 0;
  entry.schedule.launch.grid = {12, 4, 1};
  entry.schedule.launch.block = {5, 5, 1};
  entry.schedule.lut.bins_per_magnitude = 2;
  entry.schedule.lut.subpixel_phases = 3;
  entry.schedule.cpu_threads = 4;
  entry.schedule.batch_hint = 8;
  entry.modeled_s = modeled_s;
  entry.fallback_s = modeled_s * 1.75;
  return entry;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(temp_path(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SchedCache, LookupRefreshesLruOrder) {
  ScheduleCache cache(2);
  cache.insert(1, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  cache.insert(2, entry_of(starsim::SimulatorKind::kAdaptive, 2e-3));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, entry_of(starsim::SimulatorKind::kSequential, 3e-3));

  EXPECT_FALSE(cache.lookup(2).has_value());  // 2 was LRU: evicted
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  const sched::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SchedCache, InsertOverwritesInPlace) {
  ScheduleCache cache(4);
  cache.insert(7, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  cache.insert(7, entry_of(starsim::SimulatorKind::kAdaptive, 9e-3));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->schedule.simulator, starsim::SimulatorKind::kAdaptive);
  EXPECT_EQ(hit->modeled_s, 9e-3);
}

TEST(SchedCache, SaveLoadRoundTripsEveryField) {
  TempFile file("starsim_test_sched_cache_roundtrip.txt");
  ScheduleCache cache(8);
  // Doubles chosen to be unrepresentable in short decimal: the hexfloat
  // persistence must round-trip them exactly.
  const CachedSchedule original =
      entry_of(starsim::SimulatorKind::kParallel, 1.0 / 3.0);
  cache.insert(42, original);
  cache.insert(43, entry_of(starsim::SimulatorKind::kCpuParallel, 7.1e-5));
  ASSERT_TRUE(cache.save(file.path(), kDevice));

  ScheduleCache loaded(8);
  ASSERT_TRUE(loaded.load(file.path(), kDevice));
  EXPECT_EQ(loaded.size(), 2u);
  const auto hit = loaded.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->schedule.to_string(), original.schedule.to_string());
  EXPECT_EQ(hit->schedule.launch.grid.x, original.schedule.launch.grid.x);
  EXPECT_EQ(hit->schedule.launch.block.y, original.schedule.launch.block.y);
  EXPECT_EQ(hit->schedule.lut.bins_per_magnitude,
            original.schedule.lut.bins_per_magnitude);
  EXPECT_EQ(hit->schedule.lut.subpixel_phases,
            original.schedule.lut.subpixel_phases);
  EXPECT_EQ(hit->schedule.batch_hint, original.schedule.batch_hint);
  EXPECT_EQ(hit->modeled_s, original.modeled_s);    // exact: hexfloat
  EXPECT_EQ(hit->fallback_s, original.fallback_s);
}

TEST(SchedCache, LoadRejectsWrongDeviceFingerprint) {
  // A schedule tuned for one device silently applied to another would be an
  // invisible performance bug — the load must fail and keep the cache as-is.
  TempFile file("starsim_test_sched_cache_device.txt");
  ScheduleCache cache(4);
  cache.insert(1, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  ASSERT_TRUE(cache.save(file.path(), kDevice));

  ScheduleCache other(4);
  other.insert(9, entry_of(starsim::SimulatorKind::kAdaptive, 5e-3));
  EXPECT_FALSE(other.load(file.path(), kDevice + 1));
  EXPECT_EQ(other.size(), 1u);  // untouched
  EXPECT_TRUE(other.lookup(9).has_value());
}

TEST(SchedCache, RealDeviceSpecsFingerprintDistinctly) {
  // The wrong-device rejection only works if real DeviceSpecs actually
  // disagree: a GTX 480 cache must not load on a GTX 580 or a K20.
  const std::uint64_t gtx480 = gs::DeviceSpec::gtx480().fingerprint();
  const std::uint64_t gtx580 = gs::DeviceSpec::gtx580().fingerprint();
  const std::uint64_t k20 = gs::DeviceSpec::k20().fingerprint();
  EXPECT_NE(gtx480, gtx580);
  EXPECT_NE(gtx480, k20);
  EXPECT_NE(gtx580, k20);

  TempFile file("starsim_test_sched_cache_realdevice.txt");
  ScheduleCache cache(4);
  cache.insert(1, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  ASSERT_TRUE(cache.save(file.path(), gtx480));
  ScheduleCache loaded(4);
  EXPECT_FALSE(loaded.load(file.path(), gtx580));
  EXPECT_TRUE(loaded.load(file.path(), gtx480));
}

TEST(SchedCache, LoadRejectsMissingFile) {
  ScheduleCache cache(4);
  EXPECT_FALSE(cache.load(temp_path("starsim_test_sched_cache_absent.txt"),
                          kDevice));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SchedCache, LoadRejectsCorruptedFiles) {
  TempFile file("starsim_test_sched_cache_corrupt.txt");
  ScheduleCache reference(4);
  reference.insert(1, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  ASSERT_TRUE(reference.save(file.path(), kDevice));
  std::string good;
  {
    std::ifstream in(file.path());
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }

  const auto rejects = [&](const std::string& contents) {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
    out.close();
    ScheduleCache cache(4);
    cache.insert(5, entry_of(starsim::SimulatorKind::kAdaptive, 2e-3));
    const bool ok = cache.load(file.path(), kDevice);
    EXPECT_EQ(cache.size(), 1u);        // contents untouched on rejection
    EXPECT_TRUE(cache.lookup(5).has_value());
    return !ok;
  };

  // Wrong magic, wrong version, truncation (drop the trailing "end" and
  // half of the entry line), and a garbage numeric field.
  EXPECT_TRUE(rejects("not-a-cache-file 1\n"));
  EXPECT_TRUE(rejects([&] {
    std::string skewed = good;
    skewed.replace(skewed.find("cache 1"), 7, "cache 2");
    return skewed;
  }()));
  EXPECT_TRUE(rejects(good.substr(0, good.rfind("end"))));
  EXPECT_TRUE(rejects(good.substr(0, good.size() / 2)));
  EXPECT_TRUE(rejects([&] {
    std::string garbage = good;
    garbage.replace(garbage.find("0x"), 2, "zz");
    return garbage;
  }()));

  // Sanity: the unmodified file still loads.
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << good;
  }
  ScheduleCache cache(4);
  EXPECT_TRUE(cache.load(file.path(), kDevice));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SchedCache, LoadedEntriesPreserveRecencyOrder) {
  // save() writes LRU-first so a reloaded cache evicts in the same order
  // the original would have.
  TempFile file("starsim_test_sched_cache_order.txt");
  ScheduleCache cache(3);
  cache.insert(1, entry_of(starsim::SimulatorKind::kParallel, 1e-3));
  cache.insert(2, entry_of(starsim::SimulatorKind::kAdaptive, 2e-3));
  cache.insert(3, entry_of(starsim::SimulatorKind::kSequential, 3e-3));
  ASSERT_TRUE(cache.lookup(1).has_value());  // order now: 2, 3, 1
  ASSERT_TRUE(cache.save(file.path(), kDevice));

  ScheduleCache loaded(3);
  ASSERT_TRUE(loaded.load(file.path(), kDevice));
  loaded.insert(4, entry_of(starsim::SimulatorKind::kCpuParallel, 4e-3));
  EXPECT_FALSE(loaded.lookup(2).has_value());  // LRU after reload: evicted
  EXPECT_TRUE(loaded.lookup(3).has_value());
  EXPECT_TRUE(loaded.lookup(1).has_value());
}

TEST(SchedCache, WorkloadFingerprintSeparatesDevices) {
  // The cache key itself also folds the device in: two specs never collide
  // even before the file-level stamp check.
  sched::Workload workload;
  workload.scene.roi_side = 10;
  workload.star_count = 4096;
  const std::uint64_t on480 = sched::fingerprint_workload(
      workload, {}, gs::DeviceSpec::gtx480());
  const std::uint64_t on580 = sched::fingerprint_workload(
      workload, {}, gs::DeviceSpec::gtx580());
  EXPECT_NE(on480, on580);
}

}  // namespace
