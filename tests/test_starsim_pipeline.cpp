#include "starsim/pipeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/fault_injector.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::PipelineOptions;
using starsim::PipelineResult;
using starsim::SceneConfig;
using starsim::simulate_frame_sequence;
using starsim::StarField;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 128;
  scene.image_height = 128;
  scene.roi_side = 10;
  return scene;
}

std::vector<StarField> make_frames(int count, std::size_t stars_per_frame) {
  std::vector<StarField> frames;
  for (int f = 0; f < count; ++f) {
    starsim::WorkloadConfig workload;
    workload.star_count = stars_per_frame;
    workload.image_width = 128;
    workload.image_height = 128;
    workload.seed = 100u + static_cast<std::uint64_t>(f);
    frames.push_back(generate_stars(workload));
  }
  return frames;
}

TEST(Pipeline, FramesIdenticalToPerFrameSimulation) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const SceneConfig scene = small_scene();
  const auto frames = make_frames(3, 100);
  const PipelineResult result =
      simulate_frame_sequence(device, scene, frames);
  ASSERT_EQ(result.frames.size(), 3u);
  starsim::ParallelSimulator reference(device);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto expected = reference.simulate(scene, frames[f]).image;
    EXPECT_EQ(max_abs_difference(expected, result.frames[f].image), 0.0);
  }
}

TEST(Pipeline, OneStreamReproducesSerialTime) {
  gs::Device device(gs::DeviceSpec::gtx480());
  PipelineOptions options;
  options.streams = 1;
  const PipelineResult result = simulate_frame_sequence(
      device, small_scene(), make_frames(4, 200), options);
  EXPECT_NEAR(result.pipelined_s, result.serial_s, result.serial_s * 1e-9);
  EXPECT_NEAR(result.speedup(), 1.0, 1e-9);
}

TEST(Pipeline, TwoStreamsOverlapAndNeverSlowDown) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const PipelineResult result =
      simulate_frame_sequence(device, small_scene(), make_frames(8, 500));
  EXPECT_LT(result.pipelined_s, result.serial_s);
  EXPECT_GT(result.speedup(), 1.0);
  EXPECT_GT(result.frames_per_second(), 0.0);
}

TEST(Pipeline, TransferBoundSequenceApproachesCopyEngineBound) {
  // Small star fields: per-frame time is nearly all PCIe (image up + down);
  // kernels vanish under the copies. With one copy engine the pipeline can
  // only hide the kernel, so speedup = serial / copy-time ~ 1 + kernel
  // share — small but strictly measurable; with two copy engines the two
  // directions overlap too and the speedup approaches 2.
  gs::Device device(gs::DeviceSpec::gtx480());
  PipelineOptions dual;
  dual.streams = 3;
  dual.copy_engines = 2;
  const PipelineResult result = simulate_frame_sequence(
      device, small_scene(), make_frames(12, 16), dual);
  EXPECT_GT(result.speedup(), 1.5);
  EXPECT_GT(result.copy_utilization, 0.4);
}

TEST(Pipeline, ComputeBoundSequenceHidesTransfersEntirely) {
  // Big frames on a small image: kernel time dominates; transfers hide and
  // the makespan approaches the kernel sum.
  gs::Device device(gs::DeviceSpec::gtx480());
  const auto frames = make_frames(6, 20000);
  const PipelineResult result =
      simulate_frame_sequence(device, small_scene(), frames);
  double kernel_sum = 0.0;
  for (const auto& frame : result.frames) {
    kernel_sum += frame.timing.kernel_s;
  }
  EXPECT_LT(result.pipelined_s, kernel_sum * 1.25);
  EXPECT_GT(result.compute_utilization, 0.8);
}

TEST(Pipeline, EmptySequenceIsAPreconditionError) {
  // An empty sequence used to return a fake result whose speedup() silently
  // evaluated 0/0 to 1.0; now the contract violation surfaces at the entry.
  gs::Device device(gs::DeviceSpec::gtx480());
  EXPECT_THROW((void)simulate_frame_sequence(device, small_scene(),
                                             std::vector<StarField>{}),
               starsim::support::PreconditionError);
}

TEST(Pipeline, UnpopulatedResultRatesThrowInsteadOfLying) {
  const PipelineResult result;  // never ran: both times are zero
  EXPECT_THROW((void)result.speedup(),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)result.frames_per_second(),
               starsim::support::PreconditionError);
}

TEST(Pipeline, RejectsZeroStreams) {
  gs::Device device(gs::DeviceSpec::gtx480());
  PipelineOptions options;
  options.streams = 0;
  EXPECT_THROW((void)simulate_frame_sequence(device, small_scene(),
                                             make_frames(1, 10), options),
               starsim::support::PreconditionError);
}

TEST(Pipeline, ResilientModeIsBitIdenticalWithoutFaults) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const auto frames = make_frames(4, 200);
  const PipelineResult plain =
      simulate_frame_sequence(device, small_scene(), frames);
  PipelineOptions options;
  options.resilient = true;
  const PipelineResult resilient =
      simulate_frame_sequence(device, small_scene(), frames, options);
  ASSERT_EQ(resilient.frames.size(), plain.frames.size());
  ASSERT_EQ(resilient.resilience.size(), frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(max_abs_difference(plain.frames[f].image,
                                 resilient.frames[f].image),
              0.0);
    EXPECT_EQ(resilient.resilience[f].attempts, 1);
    EXPECT_FALSE(resilient.resilience[f].recovered());
  }
  // Fault-free recovery machinery must not distort the modeled schedule.
  EXPECT_DOUBLE_EQ(resilient.pipelined_s, plain.pipelined_s);
}

TEST(Pipeline, ResilientModeRecoversFaultedFramesBitIdentically) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const auto frames = make_frames(6, 300);
  const PipelineResult clean =
      simulate_frame_sequence(device, small_scene(), frames);

  gs::FaultInjector injector(gs::FaultPolicy::transient(0.1, 404));
  device.set_fault_injector(&injector);
  PipelineOptions options;
  options.resilient = true;
  options.retry.max_retries = 3;
  const PipelineResult faulted =
      simulate_frame_sequence(device, small_scene(), frames, options);
  device.set_fault_injector(nullptr);

  EXPECT_FALSE(injector.history().empty())
      << "10% fault rate over 6 frames should have injected something";
  ASSERT_EQ(faulted.frames.size(), frames.size());
  int recovered_frames = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(
        max_abs_difference(clean.frames[f].image, faulted.frames[f].image),
        0.0)
        << "frame " << f << " not bit-identical after recovery";
    if (faulted.resilience[f].recovered()) ++recovered_frames;
  }
  EXPECT_GT(recovered_frames, 0);
}

TEST(Pipeline, ResilientReportsAreDeterministicPerSeed) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const auto frames = make_frames(5, 250);
  PipelineOptions options;
  options.resilient = true;

  gs::FaultInjector injector(gs::FaultPolicy::transient(0.1, 77));
  device.set_fault_injector(&injector);
  const PipelineResult first =
      simulate_frame_sequence(device, small_scene(), frames, options);
  injector.reset();
  const PipelineResult second =
      simulate_frame_sequence(device, small_scene(), frames, options);
  device.set_fault_injector(nullptr);

  ASSERT_EQ(first.resilience.size(), second.resilience.size());
  for (std::size_t f = 0; f < first.resilience.size(); ++f) {
    EXPECT_EQ(first.resilience[f].attempts, second.resilience[f].attempts);
    EXPECT_EQ(first.resilience[f].faults.size(),
              second.resilience[f].faults.size());
    EXPECT_EQ(first.resilience[f].final_simulator,
              second.resilience[f].final_simulator);
  }
}

TEST(Pipeline, NonResilientPipelinePropagatesInjectedFaults) {
  gs::Device device(gs::DeviceSpec::gtx480());
  gs::FaultPolicy policy;
  policy.seed = 1;
  policy.h2d_fault_rate = 1.0;
  policy.corruption_fraction = 0.0;
  gs::FaultInjector injector(policy);
  device.set_fault_injector(&injector);
  EXPECT_THROW((void)simulate_frame_sequence(device, small_scene(),
                                             make_frames(2, 50)),
               starsim::support::TransferError);
  device.set_fault_injector(nullptr);
}

}  // namespace
