// Prometheus exposition: family rendering, the per-size histogram helper,
// and the scrape checker the CI observability step relies on.
#include "trace/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace starsim::trace;

TEST(Metrics, RendersHelpTypeAndSamples) {
  MetricFamily requests;
  requests.name = "starsim_serve_requests_total";
  requests.help = "requests by outcome";
  requests.type = MetricType::kCounter;
  requests.add(12, {{"outcome", "completed"}}).add(3, {{"outcome", "failed"}});
  MetricFamily depth;
  depth.name = "starsim_serve_queue_depth";
  depth.help = "current admission queue depth";
  depth.type = MetricType::kGauge;
  depth.add(4);
  const std::vector<MetricFamily> families = {requests, depth};
  const std::string text = render_prometheus(families);
  EXPECT_NE(text.find("# HELP starsim_serve_requests_total requests by "
                      "outcome\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE starsim_serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("starsim_serve_requests_total{outcome=\"completed\"} 12\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE starsim_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("starsim_serve_queue_depth 4\n"), std::string::npos);
}

TEST(Metrics, RendersSpecialValuesAndEscapes) {
  MetricFamily family;
  family.name = "m";
  family.help = "h";
  family.add(std::numeric_limits<double>::infinity());
  family.add(0.25, {{"label", "quo\"te\\back\nline"}});
  const std::vector<MetricFamily> families = {family};
  const std::string text = render_prometheus(families);
  EXPECT_NE(text.find("m +Inf\n"), std::string::npos);
  EXPECT_NE(text.find(R"(m{label="quo\"te\\back\nline"} 0.25)"),
            std::string::npos);
}

TEST(Metrics, HistogramFromCountsIsCumulative) {
  // counts[i] = events of size i: 2 singles, 1 triple -> count 3, sum 5.
  const std::uint64_t counts[] = {0, 2, 0, 1};
  const MetricFamily family = histogram_from_counts(
      "starsim_serve_batch_size", "batch sizes", counts);
  EXPECT_EQ(family.type, MetricType::kHistogram);
  const std::vector<MetricFamily> families = {family};
  const std::string text = render_prometheus(families);
  EXPECT_NE(text.find("starsim_serve_batch_size_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("starsim_serve_batch_size_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("starsim_serve_batch_size_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("starsim_serve_batch_size_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("starsim_serve_batch_size_count 3\n"),
            std::string::npos);
}

TEST(Metrics, CheckerPassesOnCompleteScrape) {
  MetricFamily gauge;
  gauge.name = "starsim_serve_queue_depth";
  gauge.help = "depth";
  gauge.add(0);
  const std::uint64_t counts[] = {0, 1};
  const std::vector<MetricFamily> families = {
      gauge, histogram_from_counts("starsim_serve_batch_size", "sizes",
                                   counts)};
  const std::vector<std::string> required = {"starsim_serve_queue_depth",
                                             "starsim_serve_batch_size"};
  EXPECT_TRUE(check_prometheus(render_prometheus(families), required).empty());
}

TEST(Metrics, CheckerFlagsMissingFamily) {
  const std::vector<std::string> required = {"starsim_serve_queue_depth"};
  const std::vector<std::string> problems = check_prometheus("", required);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("missing required metric family"),
            std::string::npos);
}

TEST(Metrics, CheckerFlagsDeclaredButUnsampledFamily) {
  // A TYPE line alone (or one whose only sample is NaN) is not a live
  // family; the checker demands at least one finite sample.
  const std::string exposition =
      "# HELP starsim_serve_queue_depth depth\n"
      "# TYPE starsim_serve_queue_depth gauge\n"
      "starsim_serve_queue_depth NaN\n";
  const std::vector<std::string> required = {"starsim_serve_queue_depth"};
  const std::vector<std::string> problems =
      check_prometheus(exposition, required);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no finite samples"), std::string::npos);
}

}  // namespace
