#include "gpusim/cache.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

using starsim::gpusim::SetAssociativeCache;
using starsim::support::PreconditionError;

TEST(Cache, FirstAccessMissesSecondHits) {
  SetAssociativeCache cache(1024, 32, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits) {
  SetAssociativeCache cache(1024, 32, 2);
  EXPECT_FALSE(cache.access(64));
  EXPECT_TRUE(cache.access(64 + 31));  // same 32-byte line
  EXPECT_FALSE(cache.access(64 + 32));  // next line
}

TEST(Cache, GeometryDerivedFromParameters) {
  SetAssociativeCache cache(4096, 32, 4);
  EXPECT_EQ(cache.set_count(), 32u);  // 4096 / (32*4)
  EXPECT_EQ(cache.associativity(), 4);
  EXPECT_EQ(cache.line_bytes(), 32);
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  // 2 sets, 2 ways, 32B lines => total 128 bytes. Addresses 0, 128, 256 all
  // map to set 0; the first two coexist, the third evicts LRU.
  SetAssociativeCache cache(128, 32, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(128));
}

TEST(Cache, LruEvictionOrder) {
  SetAssociativeCache cache(128, 32, 2);  // 2 sets x 2 ways
  (void)cache.access(0);    // set0: {0}
  (void)cache.access(128);  // set0: {0, 128}
  (void)cache.access(0);    // touch 0 -> 128 is LRU
  (void)cache.access(256);  // evicts 128
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(128));  // was evicted
}

TEST(Cache, DirectMappedThrashes) {
  SetAssociativeCache direct(64, 32, 1);  // 2 sets, 1 way
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(direct.access(0));
    EXPECT_FALSE(direct.access(64));  // same set, always evicts
  }
  EXPECT_EQ(direct.hit_rate(), 0.0);
}

TEST(Cache, WorkingSetWithinCapacityAllHitsAfterWarmup) {
  SetAssociativeCache cache(4096, 32, 4);
  for (std::uint64_t a = 0; a < 4096; a += 32) (void)cache.access(a);
  const std::uint64_t warm_misses = cache.misses();
  EXPECT_EQ(warm_misses, 128u);  // cold misses only
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 32) {
      ASSERT_TRUE(cache.access(a));
    }
  }
  EXPECT_EQ(cache.misses(), warm_misses);
}

TEST(Cache, ResetClearsLinesAndStats) {
  SetAssociativeCache cache(1024, 32, 2);
  (void)cache.access(0);
  (void)cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(Cache, InvalidateKeepsStats) {
  SetAssociativeCache cache(1024, 32, 2);
  (void)cache.access(0);
  (void)cache.access(0);
  cache.invalidate();
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.access(0));
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, HitRateComputation) {
  SetAssociativeCache cache(1024, 32, 2);
  EXPECT_EQ(cache.hit_rate(), 0.0);
  (void)cache.access(0);
  (void)cache.access(0);
  (void)cache.access(0);
  (void)cache.access(0);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.75);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssociativeCache(1024, 33, 2), PreconditionError);
  EXPECT_THROW(SetAssociativeCache(1024, 0, 2), PreconditionError);
  EXPECT_THROW(SetAssociativeCache(1024, 32, 0), PreconditionError);
  EXPECT_THROW(SetAssociativeCache(16, 32, 1), PreconditionError);
}

class CacheSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property: a sequential sweep over exactly the cache capacity never evicts
// a line before its re-use, regardless of geometry.
TEST_P(CacheSweepTest, CapacitySweepIsColdMissesOnly) {
  const auto [line, ways] = GetParam();
  const std::size_t total =
      static_cast<std::size_t>(line) * static_cast<std::size_t>(ways) * 8;
  SetAssociativeCache cache(total, line, ways);
  for (std::uint64_t a = 0; a < total; a += static_cast<std::uint64_t>(line)) {
    ASSERT_FALSE(cache.access(a));
  }
  for (std::uint64_t a = 0; a < total; a += static_cast<std::uint64_t>(line)) {
    ASSERT_TRUE(cache.access(a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweepTest,
    ::testing::Combine(::testing::Values(16, 32, 64, 128),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
