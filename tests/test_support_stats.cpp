#include "support/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.h"

namespace {

namespace sup = starsim::support;
using sup::PreconditionError;

TEST(Stats, MeanOfKnownSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sup::mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(sup::mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevOfKnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(sup::stddev(v), 2.138089935, 1e-8);
}

TEST(Stats, StddevOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(sup::stddev(std::vector<double>{42.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(sup::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(sup::median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, SummarizeKnownSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const sup::Summary s = sup::summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Stats, SummarizeEmpty) {
  const sup::Summary s = sup::summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, GeometricMeanOfRatios) {
  const std::vector<double> v{2.0, 8.0};
  EXPECT_DOUBLE_EQ(sup::geometric_mean(v), 4.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  EXPECT_THROW((void)sup::geometric_mean(std::vector<double>{1.0, 0.0}),
               PreconditionError);
  EXPECT_THROW((void)sup::geometric_mean(std::vector<double>{}),
               PreconditionError);
}

TEST(Stats, FitLineRecoversExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi - 7.0);
  const sup::LinearFit fit = sup::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisyHasLowerR2) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 4.1, 2.0, 6.5, 4.0};
  const sup::LinearFit fit = sup::fit_line(x, y);
  EXPECT_GT(fit.r_squared, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(Stats, FitLineRejectsBadInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)sup::fit_line(one, one), PreconditionError);
  const std::vector<double> constant{2.0, 2.0};
  const std::vector<double> y{1.0, 3.0};
  EXPECT_THROW((void)sup::fit_line(constant, y), PreconditionError);
  const std::vector<double> x2{1.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW((void)sup::fit_line(x2, y3), PreconditionError);
}

TEST(Stats, CorrelationOfPerfectlyCorrelated) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{10.0, 20.0, 30.0};
  EXPECT_NEAR(sup::correlation(x, y), 1.0, 1e-12);
}

TEST(Stats, CorrelationOfAnticorrelated) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{3.0, 2.0, 1.0};
  EXPECT_NEAR(sup::correlation(x, y), -1.0, 1e-12);
}

TEST(Stats, QuantileTypeSevenInterpolation) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(sup::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sup::quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(sup::quantile(v, 0.5), 3.0);
  // rank = 0.95 * 4 = 3.8 -> 4 + 0.8 * (5 - 4)
  EXPECT_DOUBLE_EQ(sup::quantile(v, 0.95), 4.8);
  // rank = 0.25 * 4 = 1.0 -> exactly the second order statistic
  EXPECT_DOUBLE_EQ(sup::quantile(v, 0.25), 2.0);
}

TEST(Stats, QuantileEdgeCases) {
  EXPECT_DOUBLE_EQ(sup::quantile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(sup::quantile(std::vector<double>{7.0}, 0.99), 7.0);
  EXPECT_THROW((void)sup::quantile(std::vector<double>{1.0}, -0.1),
               PreconditionError);
  EXPECT_THROW((void)sup::quantile(std::vector<double>{1.0}, 1.1),
               PreconditionError);
}

TEST(Stats, TailQuantilesOfUniformRamp) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const sup::TailQuantiles t = sup::tail_quantiles(v);
  EXPECT_EQ(t.count, 100u);
  EXPECT_DOUBLE_EQ(t.p50, 50.5);
  EXPECT_NEAR(t.p95, 95.05, 1e-12);
  EXPECT_NEAR(t.p99, 99.01, 1e-12);
}

TEST(Stats, TailQuantilesEmpty) {
  const sup::TailQuantiles t = sup::tail_quantiles(std::vector<double>{});
  EXPECT_EQ(t.count, 0u);
  EXPECT_DOUBLE_EQ(t.p50, 0.0);
  EXPECT_DOUBLE_EQ(t.p99, 0.0);
}

TEST(Stats, RelativeErrorProperties) {
  EXPECT_DOUBLE_EQ(sup::relative_error(1.0, 1.0), 0.0);
  EXPECT_NEAR(sup::relative_error(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(sup::relative_error(0.0, 0.0), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(sup::relative_error(3.0, 5.0),
                   sup::relative_error(5.0, 3.0));
}

}  // namespace
