#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "imageio/image.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::AdaptiveSimulator;
using starsim::ParallelSimulator;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::max_abs_difference;
using starsim::imageio::total_flux;
using starsim::serve::FrameService;
using starsim::serve::FrameServiceOptions;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;
using starsim::serve::ServiceStats;

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 64;
  scene.image_height = 64;
  scene.roi_side = 10;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 64.0f * static_cast<float>(rng.uniform());
    star.y = 64.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest pinned_request(const StarField& stars, SimulatorKind kind) {
  RenderRequest request;
  request.scene = small_scene();
  request.stars = stars;
  request.simulator = kind;
  return request;
}

TEST(FrameService, ConcurrentClientsGetBitIdenticalFrames) {
  constexpr int kClients = 8;
  constexpr std::size_t kFields = 8;

  std::vector<StarField> fields;
  std::vector<starsim::imageio::ImageF> references;
  for (std::size_t i = 0; i < kFields; ++i) {
    fields.push_back(random_stars(100 + i, 40));
    gs::Device device(gs::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(small_scene(), fields[i]).image);
  }

  FrameServiceOptions options;
  options.workers = 3;
  options.max_batch_size = 4;
  options.cache_capacity = 0;  // force every request through a worker
  FrameService service(std::move(options));

  // 8 clients race the same 8 scenes through shared workers; whatever
  // batches form, every frame must equal its solo reference bit for bit.
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<RenderResponse>>> futures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &fields, &futures, c] {
      for (std::size_t i = 0; i < kFields; ++i) {
        futures[static_cast<std::size_t>(c)].push_back(service.submit(
            pinned_request(fields[i], SimulatorKind::kParallel)));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (auto& per_client : futures) {
    for (std::size_t i = 0; i < per_client.size(); ++i) {
      const RenderResponse response = per_client[i].get();
      EXPECT_EQ(max_abs_difference(response.result->image, references[i]),
                0.0);
      EXPECT_GE(response.batch_size, 1u);
      EXPECT_FALSE(response.from_cache);
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kClients * kFields);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.latency.count, kClients * kFields);
}

TEST(FrameService, BatchedAdaptiveRendersMatchSoloRenders) {
  constexpr std::size_t kFields = 12;
  std::vector<StarField> fields;
  std::vector<starsim::imageio::ImageF> references;
  for (std::size_t i = 0; i < kFields; ++i) {
    fields.push_back(random_stars(500 + i, 30));
    gs::Device device(gs::DeviceSpec::gtx480());
    references.push_back(
        AdaptiveSimulator(device).simulate(small_scene(), fields[i]).image);
  }

  FrameServiceOptions options;
  options.workers = 1;  // one worker: every batch runs on one device
  options.max_batch_size = 6;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  std::vector<std::future<RenderResponse>> futures;
  for (const StarField& stars : fields) {
    futures.push_back(
        service.submit(pinned_request(stars, SimulatorKind::kAdaptive)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const RenderResponse response = futures[i].get();
    EXPECT_EQ(max_abs_difference(response.result->image, references[i]), 0.0);
    EXPECT_EQ(response.simulator, SimulatorKind::kAdaptive);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kFields);
  // The histogram accounts for every request exactly once.
  std::uint64_t histogram_requests = 0;
  for (std::size_t size = 0; size < stats.batch_size_histogram.size(); ++size) {
    histogram_requests += stats.batch_size_histogram[size] * size;
  }
  EXPECT_EQ(histogram_requests, kFields);
  EXPECT_GE(stats.mean_batch_size(), 1.0);
}

TEST(FrameService, TrySubmitRejectsWhenQueueFull) {
  FrameServiceOptions options;
  options.workers = 0;  // nothing drains the queue
  options.queue_capacity = 2;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  const StarField stars = random_stars(1, 10);
  auto a = service.try_submit(pinned_request(stars, SimulatorKind::kParallel));
  auto b = service.try_submit(pinned_request(stars, SimulatorKind::kParallel));
  auto c = service.try_submit(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
  EXPECT_FALSE(c.has_value());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(service.queue_depth(), 2u);

  // Stopping with zero workers fails the stranded futures instead of
  // leaving their clients blocked forever.
  service.stop();
  EXPECT_THROW((void)a->get(), starsim::support::Error);
  EXPECT_THROW((void)b->get(), starsim::support::Error);
  stats = service.stats();
  EXPECT_EQ(stats.failed, 2u);
}

TEST(FrameService, StopDrainsInFlightRequests) {
  FrameServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  std::vector<std::future<RenderResponse>> futures;
  for (std::uint64_t i = 0; i < 12; ++i) {
    futures.push_back(service.submit(
        pinned_request(random_stars(i, 20), SimulatorKind::kParallel)));
  }
  // Stop immediately: close-then-drain semantics must still complete every
  // admitted request with a rendered frame, not an exception.
  service.stop();
  for (auto& future : futures) {
    const RenderResponse response = future.get();
    EXPECT_NE(response.result, nullptr);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);

  // After stop, admission is closed.
  EXPECT_TRUE(service.stopped());
  EXPECT_THROW(
      (void)service.submit(
          pinned_request(random_stars(99, 5), SimulatorKind::kParallel)),
      starsim::support::Error);
  EXPECT_FALSE(
      service
          .try_submit(pinned_request(random_stars(99, 5),
                                     SimulatorKind::kParallel))
          .has_value());
  service.stop();  // idempotent
}

TEST(FrameService, RepeatRequestHitsCache) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 8;
  FrameService service(std::move(options));

  const StarField stars = random_stars(7, 25);
  const RenderResponse first =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_FALSE(first.from_cache);

  const RenderResponse second =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.batch_size, 0u);
  // The cache hands out the stored frame, not a copy.
  EXPECT_EQ(second.result.get(), first.result.get());
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  // A different simulator is a different identity: no false hit.
  const RenderResponse other =
      service.render(pinned_request(stars, SimulatorKind::kSequential));
  EXPECT_FALSE(other.from_cache);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_GT(stats.cache_hit_rate(), 0.0);
}

TEST(FrameService, InvalidationForcesRerender) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 8;
  FrameService service(std::move(options));

  const StarField stars = random_stars(11, 25);
  const RenderResponse first =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_TRUE(service.invalidate_cached_frame(first.fingerprint));
  EXPECT_FALSE(service.invalidate_cached_frame(first.fingerprint));

  const RenderResponse second =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_FALSE(second.from_cache);
  // Re-render of identical inputs reproduces the frame bit for bit.
  EXPECT_EQ(max_abs_difference(first.result->image, second.result->image),
            0.0);

  // Full invalidation drops everything.
  const RenderResponse third =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_TRUE(third.from_cache);
  service.invalidate_cache();
  const RenderResponse fourth =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_FALSE(fourth.from_cache);
}

TEST(FrameService, AttitudeRequestsProjectTheServiceCatalog) {
  FrameServiceOptions options;
  options.workers = 1;
  options.catalog = starsim::Catalog::synthesize(2000, 42);
  options.camera.width = 64;
  options.camera.height = 64;
  options.camera.focal_length_px = 120.0;
  const starsim::CameraModel camera = options.camera;
  const starsim::Catalog catalog = *options.catalog;
  FrameService service(std::move(options));

  const starsim::Quaternion attitude =
      starsim::Quaternion::from_euler(0.3, -0.2, 1.1);
  RenderRequest request;
  request.scene = small_scene();
  request.attitude = attitude;
  request.simulator = SimulatorKind::kSequential;
  const RenderResponse response = service.render(std::move(request));

  const StarField expected_stars =
      project_to_image(catalog.stars(), attitude, camera);
  SequentialSimulator reference;
  const SimulationResult expected =
      reference.simulate(small_scene(), expected_stars);
  EXPECT_EQ(max_abs_difference(response.result->image, expected.image), 0.0);
}

TEST(FrameService, AttitudeWithoutCatalogThrowsSynchronously) {
  FrameServiceOptions options;
  options.workers = 0;
  FrameService service(std::move(options));
  RenderRequest request;
  request.scene = small_scene();
  request.attitude = starsim::Quaternion::from_euler(0.0, 0.0, 0.0);
  EXPECT_THROW((void)service.submit(std::move(request)),
               starsim::support::PreconditionError);
  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(FrameService, RejectsMultiGpuAndBadScenes) {
  FrameServiceOptions options;
  options.workers = 0;
  FrameService service(std::move(options));

  RenderRequest multi = pinned_request(random_stars(1, 5), SimulatorKind::kMultiGpu);
  EXPECT_THROW((void)service.submit(std::move(multi)),
               starsim::support::PreconditionError);

  RenderRequest bad = pinned_request(random_stars(1, 5), SimulatorKind::kParallel);
  bad.scene.roi_side = 0;
  EXPECT_THROW((void)service.submit(std::move(bad)),
               starsim::support::PreconditionError);
  // Invalid requests never consume queue space.
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(FrameService, EmptyStarFieldRendersBlankFrame) {
  FrameServiceOptions options;
  options.workers = 1;
  FrameService service(std::move(options));
  RenderRequest request;
  request.scene = small_scene();  // no stars, no attitude, no pin
  const RenderResponse response = service.render(std::move(request));
  // Zero stars bypasses the cost model (it requires a positive star count)
  // and renders on the CPU.
  EXPECT_EQ(response.simulator, SimulatorKind::kSequential);
  EXPECT_EQ(total_flux(response.result->image), 0.0);
}

TEST(FrameService, SchedulerDrivesUnpinnedRequests) {
  FrameServiceOptions options;
  options.workers = 1;
  FrameService service(std::move(options));
  ASSERT_NE(service.scheduler(), nullptr);
  RenderRequest request;
  // Paper-scale 1024x1024 scene with a tiny field: both the legacy Table
  // III advisor and the auto-scheduler agree the CPU sequential simulator
  // wins, and the unpinned path must follow the tuned decision.
  request.scene = SceneConfig{};
  request.stars = random_stars(3, 8);
  const RenderResponse response = service.render(std::move(request));
  EXPECT_EQ(response.simulator, SimulatorKind::kSequential);
  // The decision went through the scheduler: one tune, cached thereafter.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sched.tuner_invocations, 1u);
  EXPECT_EQ(stats.sched.cache.misses, 1u);
}

TEST(FrameService, LegacySelectorPathWhenSchedulerDisabled) {
  FrameServiceOptions options;
  options.workers = 1;
  options.use_scheduler = false;
  FrameService service(std::move(options));
  EXPECT_EQ(service.scheduler(), nullptr);
  RenderRequest request;
  request.scene = SceneConfig{};
  request.stars = random_stars(3, 8);
  const RenderResponse response = service.render(std::move(request));
  // Same decision as the scheduler path, reached through the legacy
  // selector — and no sched counters move.
  EXPECT_EQ(response.simulator, SimulatorKind::kSequential);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sched.tuner_invocations, 0u);
  EXPECT_EQ(stats.sched.cache.hits + stats.sched.cache.misses, 0u);
}

TEST(FrameService, PinnedRequestsRecordSchedulerOverrides) {
  FrameServiceOptions options;
  options.workers = 1;
  FrameService service(std::move(options));
  const RenderResponse response = service.render(
      pinned_request(random_stars(5, 20), SimulatorKind::kParallel));
  EXPECT_EQ(response.simulator, SimulatorKind::kParallel);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sched.overrides_recorded, 1u);
}

TEST(FrameService, ResilientWorkersRenderIdenticalFramesWhenHealthy) {
  const StarField stars = random_stars(21, 30);
  gs::Device device(gs::DeviceSpec::gtx480());
  const auto reference =
      ParallelSimulator(device).simulate(small_scene(), stars).image;

  FrameServiceOptions options;
  options.workers = 1;
  options.worker.resilient = true;
  FrameService service(std::move(options));
  const RenderResponse response =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_EQ(max_abs_difference(response.result->image, reference), 0.0);
}

TEST(FrameService, ExpiredDeadlineFailsAtAdmission) {
  FrameServiceOptions options;
  options.workers = 0;  // admission path only
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  RenderRequest spent = pinned_request(random_stars(1, 10),
                                       SimulatorKind::kParallel);
  spent.deadline_s = 0.0;  // unmeetable before any work
  auto future = service.submit(std::move(spent));
  EXPECT_THROW((void)future.get(),
               starsim::support::DeadlineExceededError);

  RenderRequest negative = pinned_request(random_stars(1, 10),
                                          SimulatorKind::kParallel);
  negative.deadline_s = -1.0;
  auto maybe = service.try_submit(std::move(negative));
  ASSERT_TRUE(maybe.has_value());
  EXPECT_THROW((void)maybe->get(),
               starsim::support::DeadlineExceededError);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.expired_admission, 2u);
  EXPECT_EQ(stats.expired_total(), 2u);
  EXPECT_EQ(service.queue_depth(), 0u);  // never consumed queue space
}

TEST(FrameService, DeadlineExpiredInQueueIsSkippedAtBatchFormation) {
  FrameServiceOptions options;
  options.workers = 1;
  options.max_batch_size = 4;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  // A slow render occupies the single worker; requests with microscopic
  // budgets expire behind it. Their scene differs from the blocker's, so
  // they can never coalesce into its batch — they reach batch formation
  // only after the slow render, long past their deadlines, and must be
  // dropped there without ever being rendered.
  RenderRequest blocker;
  blocker.scene.image_width = 256;
  blocker.scene.image_height = 256;
  blocker.scene.roi_side = 16;
  blocker.stars = random_stars(77, 5000);
  blocker.simulator = SimulatorKind::kSequential;
  auto slow = service.submit(std::move(blocker));

  std::vector<std::future<RenderResponse>> doomed;
  for (std::uint64_t i = 0; i < 3; ++i) {
    RenderRequest request = pinned_request(random_stars(80 + i, 10),
                                           SimulatorKind::kSequential);
    request.deadline_s = 0.001;
    doomed.push_back(service.submit(std::move(request)));
  }

  EXPECT_NE(slow.get().result, nullptr);
  for (auto& future : doomed) {
    EXPECT_THROW((void)future.get(),
                 starsim::support::DeadlineExceededError);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_batch, 3u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 3u);
  // The skipped requests never rendered: only the blocker's batch exists.
  std::uint64_t histogram_requests = 0;
  for (std::size_t size = 0; size < stats.batch_size_histogram.size(); ++size) {
    histogram_requests += stats.batch_size_histogram[size] * size;
  }
  EXPECT_EQ(histogram_requests, 1u);
}

TEST(FrameService, DeadlineMissedDuringRenderFailsPostRender) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 8;
  FrameService service(std::move(options));

  // The budget comfortably covers the queue wait (the worker is idle) but
  // not the render itself: the frame exists, finishes late, and the future
  // must see the deadline error, not the frame.
  RenderRequest request;
  request.scene.image_width = 256;
  request.scene.image_height = 256;
  request.scene.roi_side = 20;
  request.stars = random_stars(90, 8000);
  request.simulator = SimulatorKind::kSequential;
  request.deadline_s = 0.005;
  auto future = service.submit(std::move(request));
  EXPECT_THROW((void)future.get(),
               starsim::support::DeadlineExceededError);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_post_render, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(FrameService, GenerousDeadlineDeliversNormally) {
  FrameServiceOptions options;
  options.workers = 1;
  FrameService service(std::move(options));
  RenderRequest request = pinned_request(random_stars(5, 20),
                                         SimulatorKind::kParallel);
  request.deadline_s = 30.0;
  const RenderResponse response = service.render(std::move(request));
  EXPECT_NE(response.result, nullptr);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_total(), 0u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(FrameService, TrySubmitShedsLowestPriorityFirstUnderOverload) {
  using starsim::serve::RequestPriority;
  FrameServiceOptions options;
  options.workers = 0;  // nothing drains: admission decisions are visible
  options.queue_capacity = 2;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  const auto prioritized = [&](std::uint64_t seed, RequestPriority priority) {
    RenderRequest request = pinned_request(random_stars(seed, 10),
                                           SimulatorKind::kParallel);
    request.priority = priority;
    return request;
  };

  auto low_old = service.try_submit(prioritized(1, RequestPriority::kLow));
  auto low_young = service.try_submit(prioritized(2, RequestPriority::kLow));
  ASSERT_TRUE(low_old.has_value());
  ASSERT_TRUE(low_young.has_value());

  // Full queue, but of low-priority work: a high admission displaces the
  // youngest low request; a normal one then displaces the older low.
  auto high = service.try_submit(prioritized(3, RequestPriority::kHigh));
  ASSERT_TRUE(high.has_value());
  EXPECT_THROW((void)low_young->get(),
               starsim::support::OverloadShedError);
  auto normal = service.try_submit(prioritized(4, RequestPriority::kNormal));
  ASSERT_TRUE(normal.has_value());
  EXPECT_THROW((void)low_old->get(), starsim::support::OverloadShedError);

  // Nothing below normal remains: equal-or-lower admissions bounce.
  EXPECT_FALSE(
      service.try_submit(prioritized(5, RequestPriority::kLow)).has_value());
  EXPECT_FALSE(
      service.try_submit(prioritized(6, RequestPriority::kNormal)).has_value());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.failed, 2u);

  service.stop();  // the surviving high + normal futures fail typed
  EXPECT_THROW((void)high->get(), starsim::support::Error);
  EXPECT_THROW((void)normal->get(), starsim::support::Error);
  stats = service.stats();
  EXPECT_EQ(stats.failed, 4u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FrameService, HighPriorityOvertakesEarlierLowPriorityInQueue) {
  using starsim::serve::RequestPriority;
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  // Occupy the single worker, then queue a low request *before* a high
  // one. The worker must drain the high band first, so the high response
  // finishes with the smaller total latency despite arriving later.
  RenderRequest blocker;
  blocker.scene.image_width = 256;
  blocker.scene.image_height = 256;
  blocker.scene.roi_side = 16;
  blocker.stars = random_stars(70, 3000);
  blocker.simulator = SimulatorKind::kSequential;
  auto busy = service.submit(std::move(blocker));

  RenderRequest low;
  low.scene.image_width = 128;
  low.scene.image_height = 128;
  low.scene.roi_side = 12;
  low.stars = random_stars(71, 4000);
  low.simulator = SimulatorKind::kSequential;
  low.priority = RequestPriority::kLow;
  RenderRequest high = low;
  high.stars = random_stars(72, 4000);
  high.priority = RequestPriority::kHigh;

  auto low_future = service.submit(std::move(low));
  auto high_future = service.submit(std::move(high));

  EXPECT_NE(busy.get().result, nullptr);
  const RenderResponse high_response = high_future.get();
  const RenderResponse low_response = low_future.get();
  EXPECT_LT(high_response.latency.total_s, low_response.latency.total_s);
}

TEST(FrameService, StopWakesSubmitterBlockedOnFullQueue) {
  FrameServiceOptions options;
  options.workers = 0;  // the queue never drains
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  FrameService service(std::move(options));

  auto queued = service.submit(
      pinned_request(random_stars(1, 10), SimulatorKind::kParallel));

  // The second submit blocks on the full queue; stop() must wake it with a
  // typed error instead of deadlocking shutdown against the submitter.
  std::atomic<bool> threw{false};
  std::thread submitter([&] {
    try {
      (void)service.submit(
          pinned_request(random_stars(2, 10), SimulatorKind::kParallel));
    } catch (const starsim::support::Error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.stop();
  submitter.join();
  EXPECT_TRUE(threw.load());

  // The admitted request failed at drain; the blocked one never counted.
  EXPECT_THROW((void)queued.get(), starsim::support::Error);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FrameService, CacheInvalidationRacesConcurrentSubmitters) {
  constexpr int kSubmitters = 3;
  constexpr std::size_t kIterations = 40;
  constexpr std::size_t kFields = 4;

  std::vector<StarField> fields;
  std::vector<starsim::imageio::ImageF> references;
  for (std::size_t i = 0; i < kFields; ++i) {
    fields.push_back(random_stars(600 + i, 25));
    gs::Device device(gs::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(small_scene(), fields[i]).image);
  }

  FrameServiceOptions options;
  options.workers = 2;
  options.cache_capacity = 16;
  FrameService service(std::move(options));

  const RenderResponse primed =
      service.render(pinned_request(fields[0], SimulatorKind::kParallel));
  const std::uint64_t fingerprint = primed.fingerprint;

  // Submitters hammer a small working set (high hit likelihood) while the
  // invalidator concurrently drops frames; every response must still be
  // the exact frame whether it came from a worker or the cache.
  std::atomic<bool> done{false};
  std::thread invalidator([&] {
    while (!done.load()) {
      service.invalidate_cache();
      (void)service.invalidate_cached_frame(fingerprint);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> submitters;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        const std::size_t field = (i + static_cast<std::size_t>(t)) % kFields;
        const RenderResponse response = service.render(
            pinned_request(fields[field], SimulatorKind::kParallel));
        if (max_abs_difference(response.result->image, references[field]) !=
            0.0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  done.store(true);
  invalidator.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kSubmitters * kIterations + 1);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.in_flight(), 0u);
}

TEST(FrameService, HealthReportsAHealthyPool) {
  FrameServiceOptions options;
  options.workers = 2;
  FrameService service(std::move(options));
  const starsim::serve::PoolHealth health = service.health();
  ASSERT_EQ(health.workers.size(), 2u);
  EXPECT_EQ(health.active_workers, 2);
  EXPECT_FALSE(health.degraded());
  for (const auto& worker : health.workers) {
    EXPECT_EQ(worker.state, starsim::serve::WorkerState::kHealthy);
    EXPECT_EQ(to_string(worker.state), "healthy");
    EXPECT_EQ(worker.device_replacements, 0);
    EXPECT_EQ(worker.quarantines, 0);
  }
  EXPECT_EQ(health.sink_exceptions, 0u);
}

TEST(FrameService, StatsReportLatencyAndThroughput) {
  FrameServiceOptions options;
  options.workers = 2;
  FrameService service(std::move(options));
  for (std::uint64_t i = 0; i < 6; ++i) {
    (void)service.render(
        pinned_request(random_stars(i, 15), SimulatorKind::kParallel));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.latency.count, 6u);
  EXPECT_GT(stats.latency.p50, 0.0);
  EXPECT_GE(stats.latency.p99, stats.latency.p50);
  EXPECT_GT(stats.mean_latency_s, 0.0);
  EXPECT_GT(stats.elapsed_s, 0.0);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

// A sanitized request round-trips through the full pipeline: bypasses the
// cache both ways, renders bit-identically, and carries a clean report.
TEST(FrameService, SanitizedRequestRoundTrip) {
  FrameServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 8;
  FrameService service(std::move(options));

  const StarField stars = random_stars(11, 25);
  const RenderResponse plain =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_FALSE(plain.from_cache);
  EXPECT_EQ(plain.sanitizer, nullptr);

  RenderRequest request = pinned_request(stars, SimulatorKind::kParallel);
  request.sanitize = true;
  const RenderResponse sanitized = service.render(std::move(request));
  // The client asked for the instrumented render itself, not a cached frame.
  EXPECT_FALSE(sanitized.from_cache);
  ASSERT_NE(sanitized.sanitizer, nullptr);
  EXPECT_TRUE(sanitized.sanitizer->clean()) << sanitized.sanitizer->summary();
  EXPECT_FALSE(sanitized.degraded);

  // Instrumentation must not change a bit of the frame.
  const auto& a = plain.result->image;
  const auto& b = sanitized.result->image;
  ASSERT_EQ(a.pixels().size(), b.pixels().size());
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    ASSERT_EQ(a.pixels()[i], b.pixels()[i]) << "pixel " << i;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sanitized_requests, 1u);
  EXPECT_EQ(stats.sanitizer_findings, 0u);

  // The sanitized render was not inserted: a later plain request still hits
  // the original production frame.
  const RenderResponse hit =
      service.render(pinned_request(stars, SimulatorKind::kParallel));
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.result.get(), plain.result.get());
}

}  // namespace
