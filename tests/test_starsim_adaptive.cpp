#include "starsim/adaptive_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "starsim/parallel_simulator.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::AdaptiveSimulator;
using starsim::LookupTableOptions;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::Star;
using starsim::StarField;

SceneConfig scene_of(int edge, int roi) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

double image_scale(const starsim::imageio::ImageF& image) {
  double peak = 0.0;
  for (float v : image.pixels()) peak = std::max(peak, static_cast<double>(v));
  return peak > 0.0 ? peak : 1.0;
}

/// Stars whose magnitudes sit exactly at lookup-table bin centers and whose
/// positions are integral — the regime where the adaptive simulator is
/// numerically equivalent to the parallel one.
StarField bin_centered_stars(std::size_t count, int edge, int bins_per_mag) {
  starsim::support::Pcg32 rng(7);
  StarField stars;
  const double width = 1.0 / bins_per_mag;
  const int total_bins = static_cast<int>(std::ceil(15.0 * bins_per_mag));
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    const int bin = static_cast<int>(rng.bounded(
        static_cast<std::uint32_t>(total_bins)));
    star.magnitude = static_cast<float>((bin + 0.5) * width);
    star.x = static_cast<float>(rng.bounded(static_cast<std::uint32_t>(edge)));
    star.y = static_cast<float>(rng.bounded(static_cast<std::uint32_t>(edge)));
    stars.push_back(star);
  }
  return stars;
}

class AdaptiveEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdaptiveEquivalenceTest, MatchesSequentialAtBinCenters) {
  const auto [edge, roi] = GetParam();
  const SceneConfig scene = scene_of(edge, roi);
  const StarField stars = bin_centered_stars(150, edge, 1);

  SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const auto a = seq.simulate(scene, stars).image;
  const auto b = ada.simulate(scene, stars).image;
  EXPECT_LT(max_abs_difference(a, b) / image_scale(a), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdaptiveEquivalenceTest,
                         ::testing::Values(std::make_tuple(64, 10),
                                           std::make_tuple(128, 5),
                                           std::make_tuple(128, 16),
                                           std::make_tuple(100, 9)));

TEST(Adaptive, MagnitudeQuantizationErrorShrinksWithFinerBins) {
  const SceneConfig scene = scene_of(128, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 200;
  workload.image_width = 128;
  workload.image_height = 128;
  const StarField stars = generate_stars(workload);  // continuous magnitudes

  SequentialSimulator seq;
  const auto reference = seq.simulate(scene, stars).image;
  const double scale = image_scale(reference);

  double previous_error = 1e300;
  for (int bins : {1, 4, 16, 64}) {
    gs::Device device(gs::DeviceSpec::gtx480());
    LookupTableOptions options;
    options.bins_per_magnitude = bins;
    AdaptiveSimulator ada(device, options);
    const double error =
        max_abs_difference(reference, ada.simulate(scene, stars).image) /
        scale;
    EXPECT_LT(error, previous_error);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 2e-2);  // 64 bins/mag: ~1% flux error bound
}

TEST(Adaptive, SubpixelPhasesReduceErrorForFractionalPositions) {
  // Narrow magnitude range + fine bins so the position (phase) error
  // dominates and the table still fits the texture extent at 8 phases.
  SceneConfig scene = scene_of(128, 10);
  scene.magnitude_min = 3.0;
  scene.magnitude_max = 4.0;
  starsim::WorkloadConfig workload;
  workload.star_count = 150;
  workload.image_width = 128;
  workload.image_height = 128;
  workload.integer_positions = false;
  workload.magnitude_min = 3.0;
  workload.magnitude_max = 4.0;
  const StarField stars = generate_stars(workload);

  SequentialSimulator seq;
  const auto reference = seq.simulate(scene, stars).image;
  const double scale = image_scale(reference);

  auto error_with_phases = [&](int phases) {
    gs::Device device(gs::DeviceSpec::gtx480());
    LookupTableOptions options;
    options.bins_per_magnitude = 64;  // make position error dominant
    options.subpixel_phases = phases;
    AdaptiveSimulator ada(device, options);
    return max_abs_difference(reference, ada.simulate(scene, stars).image) /
           scale;
  };
  const double e1 = error_with_phases(1);
  const double e4 = error_with_phases(4);
  const double e8 = error_with_phases(8);
  EXPECT_LT(e4, e1);
  EXPECT_LT(e8, e4);
}

TEST(Adaptive, BreakdownIncludesLutAndBindingCosts) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = bin_centered_stars(32, 128, 1);
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const SimulationResult r = ada.simulate(scene, stars);
  EXPECT_GT(r.timing.kernel_s, 0.0);
  EXPECT_GT(r.timing.lut_build_s, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.texture_bind_s, device.spec().texture_bind_s);
  // Table I: LUT build ~0.71 ms at the paper's geometry (our bins: 15).
  EXPECT_NEAR(r.timing.lut_build_s, 0.71e-3, 0.2e-3);
  EXPECT_GT(r.timing.non_kernel_s(),
            r.timing.h2d_s + r.timing.d2h_s);  // extra non-kernel overhead
}

TEST(Adaptive, KernelUsesTextureNotExp) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = bin_centered_stars(64, 128, 1);
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const SimulationResult r = ada.simulate(scene, stars);
  // One fetch per in-bounds ROI pixel.
  EXPECT_GT(r.timing.counters.texture_fetches, 0u);
  EXPECT_EQ(r.timing.counters.texture_fetches,
            r.timing.counters.atomic_ops);
  // Far fewer flops per thread than the parallel kernel (no exp/pow).
  starsim::ParallelSimulator par(device);
  const SimulationResult p = par.simulate(scene, stars);
  EXPECT_LT(r.timing.counters.flops, p.timing.counters.flops / 5);
  EXPECT_LT(r.timing.kernel_s, p.timing.kernel_s);
}

TEST(Adaptive, TextureCacheHitsDominate) {
  // The lookup table (6 KB at paper geometry) fits the 12 KB texture cache:
  // after cold misses, fetches hit.
  const SceneConfig scene = scene_of(256, 10);
  const StarField stars = bin_centered_stars(500, 256, 1);
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const SimulationResult r = ada.simulate(scene, stars);
  EXPECT_GT(r.timing.counters.texture_hits,
            r.timing.counters.texture_misses * 10);
}

TEST(Adaptive, CountersMatchPredictorOnDeterministicFields) {
  const SceneConfig scene = scene_of(256, 10);
  starsim::WorkloadConfig workload;
  workload.star_count = 128;
  workload.image_width = 256;
  workload.image_height = 256;
  workload.border_margin = 8;
  const StarField stars = generate_stars(workload);

  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const SimulationResult r = ada.simulate(scene, stars);
  const starsim::SimulatorSelector selector;
  const gs::KernelCounters predicted =
      selector.predict_adaptive_counters(scene, stars.size());
  EXPECT_EQ(r.timing.counters.threads_launched, predicted.threads_launched);
  EXPECT_EQ(r.timing.counters.flops, predicted.flops);
  EXPECT_EQ(r.timing.counters.shared_reads, predicted.shared_reads);
  EXPECT_EQ(r.timing.counters.shared_writes, predicted.shared_writes);
  EXPECT_EQ(r.timing.counters.atomic_ops, predicted.atomic_ops);
  EXPECT_EQ(r.timing.counters.texture_fetches, predicted.texture_fetches);
  EXPECT_EQ(r.timing.counters.global_transactions,
            predicted.global_transactions);
  EXPECT_EQ(r.timing.counters.shared_bank_conflicts,
            predicted.shared_bank_conflicts);
  EXPECT_EQ(r.timing.counters.barriers, predicted.barriers);
}

TEST(Adaptive, TextureUnboundAndMemoryReleasedAfterRun) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = bin_centered_stars(16, 128, 1);
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const std::size_t before = device.memory().used_bytes();
  (void)ada.simulate(scene, stars);
  EXPECT_EQ(device.memory().used_bytes(), before);
  EXPECT_EQ(device.bound_texture_count(), 0u);
}

TEST(Adaptive, MaxMagnitudeBinsRespectsTextureExtent) {
  gs::Device device(gs::DeviceSpec::gtx480());
  // 65536-row extent / (10 rows per bin) = 6553 bins at ROI 10, 1 phase.
  EXPECT_EQ(AdaptiveSimulator::max_magnitude_bins(device, 10, 1), 6553);
  // 4 phases: 160 rows per bin.
  EXPECT_EQ(AdaptiveSimulator::max_magnitude_bins(device, 10, 4), 409);
}

TEST(Adaptive, OversizedTableThrows) {
  gs::Device device(gs::DeviceSpec::gtx480());
  LookupTableOptions options;
  options.bins_per_magnitude = 1000;  // 15000 bins > 6553 extent limit
  AdaptiveSimulator ada(device, options);
  const SceneConfig scene = scene_of(64, 10);
  const StarField stars(1, Star{3.0f, 32.0f, 32.0f, 1.0f});
  EXPECT_THROW((void)ada.simulate(scene, stars),
               starsim::support::DeviceError);
}

TEST(Adaptive, EmptyStarFieldShortCircuits) {
  gs::Device device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator ada(device);
  const SimulationResult r = ada.simulate(scene_of(64, 10), StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
  EXPECT_DOUBLE_EQ(r.timing.lut_build_s, 0.0);
}

TEST(Adaptive, BatchFramesBitIdenticalToSoloRenders) {
  const SceneConfig scene = scene_of(128, 10);
  std::vector<StarField> fields;
  fields.push_back(bin_centered_stars(60, 128, 1));
  fields.push_back(bin_centered_stars(90, 128, 1));
  fields.push_back(bin_centered_stars(120, 128, 1));

  gs::Device batch_device(gs::DeviceSpec::gtx480());
  AdaptiveSimulator batch_sim(batch_device);
  const std::vector<SimulationResult> batched =
      batch_sim.simulate_batch(scene, fields);
  ASSERT_EQ(batched.size(), fields.size());

  for (std::size_t i = 0; i < fields.size(); ++i) {
    gs::Device solo_device(gs::DeviceSpec::gtx480());
    AdaptiveSimulator solo_sim(solo_device);
    const SimulationResult solo = solo_sim.simulate(scene, fields[i]);
    // Bit-identical, not merely close: batching shares the lookup-table
    // setup but must never change a rendered pixel.
    EXPECT_EQ(max_abs_difference(solo.image, batched[i].image), 0.0f);
    EXPECT_DOUBLE_EQ(batched[i].timing.kernel_s, solo.timing.kernel_s);
  }
}

TEST(Adaptive, BatchAmortizesSetupAcrossFrames) {
  const SceneConfig scene = scene_of(128, 10);
  const StarField stars = bin_centered_stars(80, 128, 1);
  const std::vector<StarField> fields(4, stars);

  gs::Device solo_device(gs::DeviceSpec::gtx480());
  const SimulationResult solo =
      AdaptiveSimulator(solo_device).simulate(scene, stars);

  gs::Device batch_device(gs::DeviceSpec::gtx480());
  const std::vector<SimulationResult> batched =
      AdaptiveSimulator(batch_device).simulate_batch(scene, fields);
  ASSERT_EQ(batched.size(), 4u);

  double batch_build = 0.0;
  double batch_bind = 0.0;
  for (const SimulationResult& r : batched) {
    // Each frame carries an equal 1/4 share of the shared setup.
    EXPECT_DOUBLE_EQ(r.timing.lut_build_s, solo.timing.lut_build_s / 4.0);
    EXPECT_DOUBLE_EQ(r.timing.texture_bind_s,
                     solo.timing.texture_bind_s / 4.0);
    EXPECT_LT(r.timing.non_kernel_s(), solo.timing.non_kernel_s());
    batch_build += r.timing.lut_build_s;
    batch_bind += r.timing.texture_bind_s;
  }
  // The batch pays the setup exactly once in total.
  EXPECT_NEAR(batch_build, solo.timing.lut_build_s, 1e-15);
  EXPECT_NEAR(batch_bind, solo.timing.texture_bind_s, 1e-15);
}

TEST(Adaptive, BatchSkipsSetupShareForEmptyFields) {
  const SceneConfig scene = scene_of(64, 10);
  std::vector<StarField> fields;
  fields.push_back(bin_centered_stars(20, 64, 1));
  fields.push_back(StarField{});
  fields.push_back(bin_centered_stars(30, 64, 1));

  gs::Device device(gs::DeviceSpec::gtx480());
  const std::vector<SimulationResult> batched =
      AdaptiveSimulator(device).simulate_batch(scene, fields);
  ASSERT_EQ(batched.size(), 3u);
  for (float v : batched[1].image.pixels()) ASSERT_EQ(v, 0.0f);
  EXPECT_DOUBLE_EQ(batched[1].timing.lut_build_s, 0.0);
  // The two non-empty frames split the setup between themselves.
  EXPECT_DOUBLE_EQ(batched[0].timing.lut_build_s,
                   batched[2].timing.lut_build_s);
  EXPECT_GT(batched[0].timing.lut_build_s, 0.0);
}

TEST(Adaptive, BatchOfAllEmptyFieldsIsBlank) {
  gs::Device device(gs::DeviceSpec::gtx480());
  const std::vector<StarField> fields(2);
  const std::vector<SimulationResult> batched =
      AdaptiveSimulator(device).simulate_batch(scene_of(64, 10), fields);
  ASSERT_EQ(batched.size(), 2u);
  for (const SimulationResult& r : batched) {
    for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
    EXPECT_DOUBLE_EQ(r.timing.lut_build_s, 0.0);
  }
}

}  // namespace
