#include "starsim/sequential_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "starsim/psf.h"
#include "starsim/roi.h"
#include "starsim/selector.h"
#include "support/error.h"

namespace {

using starsim::GaussianPsf;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::Star;
using starsim::StarField;

SceneConfig small_scene(int edge = 64, int roi = 10) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

TEST(Sequential, SingleStarCenterPixelValue) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const StarField stars{Star{3.0f, 32.0f, 32.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, stars);
  const GaussianPsf psf(scene.psf_sigma);
  const double expected =
      scene.brightness.brightness(3.0) * psf.coefficient();
  EXPECT_NEAR(r.image(32, 32), expected, expected * 1e-6);
}

TEST(Sequential, FluxFallsOffGaussian) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const StarField stars{Star{2.0f, 32.0f, 32.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, stars);
  const GaussianPsf psf(scene.psf_sigma);
  const double brightness = scene.brightness.brightness(2.0);
  for (int dx : {-3, -1, 1, 2}) {
    const double expected = brightness * psf.intensity_rate(dx, 0);
    ASSERT_NEAR(r.image(32 + dx, 32), expected,
                std::abs(expected) * 1e-5 + 1e-6);
  }
}

TEST(Sequential, PixelsOutsideRoiStayZero) {
  const SceneConfig scene = small_scene(64, 10);
  SequentialSimulator sim;
  const StarField stars{Star{1.0f, 32.0f, 32.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, stars);
  // ROI covers [27, 37); everything outside is untouched.
  EXPECT_EQ(r.image(26, 32), 0.0f);
  EXPECT_EQ(r.image(37, 32), 0.0f);
  EXPECT_EQ(r.image(32, 26), 0.0f);
  EXPECT_EQ(r.image(0, 0), 0.0f);
  EXPECT_GT(r.image(27, 32), 0.0f);
  EXPECT_GT(r.image(36, 32), 0.0f);
}

TEST(Sequential, TwoStarsAddLinearly) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const Star a{2.0f, 30.0f, 30.0f, 1.0f};
  const Star b{4.0f, 33.0f, 31.0f, 1.0f};
  const auto only_a = sim.simulate(scene, StarField{a}).image;
  const auto only_b = sim.simulate(scene, StarField{b}).image;
  const auto both = sim.simulate(scene, StarField{a, b}).image;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      ASSERT_NEAR(both(x, y), only_a(x, y) + only_b(x, y), 1e-4);
    }
  }
}

TEST(Sequential, EnergyConservedWithinRoi) {
  SceneConfig scene = small_scene(128, 20);
  scene.psf_sigma = 1.5;
  SequentialSimulator sim;
  const StarField stars{Star{5.0f, 64.0f, 64.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, stars);
  const double brightness = scene.brightness.brightness(5.0);
  // A 20x20 ROI holds essentially all flux at sigma 1.5 (radius ~10 = 6.7
  // sigma); total image flux must equal the star's brightness.
  EXPECT_NEAR(total_flux(r.image), brightness, brightness * 1e-4);
}

TEST(Sequential, BorderStarLosesClippedFlux) {
  const SceneConfig scene = small_scene(64, 10);
  SequentialSimulator sim;
  const StarField interior{Star{5.0f, 32.0f, 32.0f, 1.0f}};
  const StarField corner{Star{5.0f, 0.0f, 0.0f, 1.0f}};
  const double full = total_flux(sim.simulate(scene, interior).image);
  const double clipped = total_flux(sim.simulate(scene, corner).image);
  EXPECT_LT(clipped, full);
  EXPECT_GT(clipped, 0.0);
  // A corner star keeps roughly a quarter of its flux.
  EXPECT_NEAR(clipped / full, 0.25, 0.15);
}

TEST(Sequential, WeightScalesContribution) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const StarField unit{Star{3.0f, 32.0f, 32.0f, 1.0f}};
  const StarField half{Star{3.0f, 32.0f, 32.0f, 0.5f}};
  const auto u = sim.simulate(scene, unit).image;
  const auto h = sim.simulate(scene, half).image;
  EXPECT_NEAR(h(32, 32), 0.5 * u(32, 32), 1e-6);
}

TEST(Sequential, SubpixelPositionShiftsFlux) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const StarField stars{Star{3.0f, 32.3f, 32.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, stars);
  // Star sits right of pixel 32: pixel 33 sees more flux than pixel 31.
  EXPECT_GT(r.image(33, 32), r.image(31, 32));
}

TEST(Sequential, EmptyStarFieldYieldsBlackImage) {
  const SceneConfig scene = small_scene();
  SequentialSimulator sim;
  const SimulationResult r = sim.simulate(scene, StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
  EXPECT_EQ(r.timing.counters.flops, 0u);
}

TEST(Sequential, FlopsMatchAnalyticPrediction) {
  const SceneConfig scene = small_scene(256, 10);
  SequentialSimulator sim;
  // Interior stars only, so the predictor's no-clipping assumption is exact.
  StarField stars;
  for (int i = 0; i < 7; ++i) {
    stars.push_back(Star{static_cast<float>(i), 100.0f + static_cast<float>(3 * i),
                         120.0f, 1.0f});
  }
  const SimulationResult r = sim.simulate(scene, stars);
  const starsim::SimulatorSelector selector;
  EXPECT_EQ(r.timing.counters.flops,
            selector.predict_sequential_flops(scene, stars.size()));
}

TEST(Sequential, ModeledTimeProportionalToFlops) {
  const SceneConfig scene = small_scene();
  const starsim::gpusim::HostSpec host = starsim::gpusim::HostSpec::i7_860();
  SequentialSimulator sim(host);
  const StarField one{Star{3.0f, 32.0f, 32.0f, 1.0f}};
  const SimulationResult r = sim.simulate(scene, one);
  EXPECT_DOUBLE_EQ(
      r.timing.host_compute_s,
      static_cast<double>(r.timing.counters.flops) /
          host.effective_scalar_flops);
  EXPECT_DOUBLE_EQ(r.timing.kernel_s, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.non_kernel_s(), 0.0);
  EXPECT_GT(r.timing.wall_s, 0.0);
}

TEST(Sequential, ValidatesScene) {
  SequentialSimulator sim;
  SceneConfig scene = small_scene();
  scene.psf_sigma = -1.0;
  EXPECT_THROW((void)sim.simulate(scene, StarField{}),
               starsim::support::PreconditionError);
}

}  // namespace
