#include "starsim/roi.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

using starsim::Roi;

TEST(Roi, RejectsNonPositiveSide) {
  EXPECT_THROW(Roi(0), starsim::support::PreconditionError);
  EXPECT_THROW(Roi(-3), starsim::support::PreconditionError);
}

TEST(Roi, MarginIsHalfSide) {
  EXPECT_EQ(Roi(10).margin(), 5);
  EXPECT_EQ(Roi(9).margin(), 4);
  EXPECT_EQ(Roi(1).margin(), 0);
  EXPECT_EQ(Roi(32).margin(), 16);
}

TEST(Roi, AreaIsSideSquared) {
  EXPECT_EQ(Roi(10).area(), 100);
  EXPECT_EQ(Roi(3).area(), 9);
}

TEST(Roi, BaseCoordRoundsStarPosition) {
  const Roi roi(10);  // margin 5
  EXPECT_EQ(roi.base_coord(100.0f), 95);
  EXPECT_EQ(roi.base_coord(100.4f), 95);
  EXPECT_EQ(roi.base_coord(100.6f), 96);
  EXPECT_EQ(roi.base_coord(0.0f), -5);
}

TEST(Roi, InteriorStarHasFullBounds) {
  const Roi roi(10);
  const Roi::Bounds b = roi.clipped_bounds(100.0f, 200.0f, 1024, 1024);
  EXPECT_EQ(b.x0, 95);
  EXPECT_EQ(b.x1, 105);
  EXPECT_EQ(b.y0, 195);
  EXPECT_EQ(b.y1, 205);
  EXPECT_EQ(b.area(), 100);
  EXPECT_FALSE(b.empty());
}

TEST(Roi, CornerStarClipsToQuarter) {
  const Roi roi(10);
  const Roi::Bounds b = roi.clipped_bounds(0.0f, 0.0f, 1024, 1024);
  EXPECT_EQ(b.x0, 0);
  EXPECT_EQ(b.x1, 5);
  EXPECT_EQ(b.y0, 0);
  EXPECT_EQ(b.y1, 5);
  EXPECT_EQ(b.area(), 25);
}

TEST(Roi, EdgeStarClipsOneAxis) {
  const Roi roi(10);
  const Roi::Bounds b = roi.clipped_bounds(512.0f, 1023.0f, 1024, 1024);
  EXPECT_EQ(b.x0, 507);
  EXPECT_EQ(b.x1, 517);
  EXPECT_EQ(b.y0, 1018);
  EXPECT_EQ(b.y1, 1024);
  EXPECT_EQ(b.area(), 60);
}

TEST(Roi, FarOutsideStarHasEmptyBounds) {
  const Roi roi(10);
  const Roi::Bounds b = roi.clipped_bounds(-100.0f, 512.0f, 1024, 1024);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.area(), 0);
  EXPECT_EQ(b.width(), 0);
}

TEST(Roi, JustOutsideStarStillTouchesFrame) {
  const Roi roi(10);
  // Star 3 pixels off the left edge: columns -8..1 -> 0..1 survive.
  const Roi::Bounds b = roi.clipped_bounds(-3.0f, 512.0f, 1024, 1024);
  EXPECT_EQ(b.x0, 0);
  EXPECT_EQ(b.x1, 2);
  EXPECT_FALSE(b.empty());
}

TEST(Roi, FullyInsidePredicate) {
  const Roi roi(10);
  EXPECT_TRUE(roi.fully_inside(100.0f, 100.0f, 1024, 1024));
  EXPECT_TRUE(roi.fully_inside(5.0f, 5.0f, 1024, 1024));    // base = 0
  EXPECT_FALSE(roi.fully_inside(4.0f, 100.0f, 1024, 1024));  // base = -1
  EXPECT_TRUE(roi.fully_inside(1019.0f, 1019.0f, 1024, 1024));  // 1014+10=1024
  EXPECT_FALSE(roi.fully_inside(1020.0f, 100.0f, 1024, 1024));
}

class RoiConsistencyTest : public ::testing::TestWithParam<int> {};

// Property: for any side, an interior star's clipped bounds have exactly
// side^2 pixels and start at base_coord.
TEST_P(RoiConsistencyTest, InteriorBoundsMatchGeometry) {
  const int side = GetParam();
  const Roi roi(side);
  const float x = 100.0f;
  const float y = 77.0f;
  const Roi::Bounds b = roi.clipped_bounds(x, y, 1024, 1024);
  EXPECT_EQ(b.x0, roi.base_coord(x));
  EXPECT_EQ(b.y0, roi.base_coord(y));
  EXPECT_EQ(b.width(), side);
  EXPECT_EQ(b.height(), side);
  EXPECT_EQ(b.area(), static_cast<long>(side) * side);
}

INSTANTIATE_TEST_SUITE_P(Sides, RoiConsistencyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 16, 31, 32));

}  // namespace
