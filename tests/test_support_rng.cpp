#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "support/error.h"
#include "support/stats.h"

namespace {

using starsim::support::Pcg32;
using starsim::support::PreconditionError;

TEST(Pcg32, SameSeedSameSequence) {
  Pcg32 a(123);
  Pcg32 b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Pcg32, DifferentSeedsDifferentSequences) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDifferentSequences) {
  Pcg32 a(7, 100);
  Pcg32 b(7, 101);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, ReseedReproduces) {
  Pcg32 rng(55);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng());
  rng.seed(55);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformRangeRespectsBounds) {
  Pcg32 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 12.25);
  }
}

TEST(Pcg32, UniformMeanNearCenter) {
  Pcg32 rng(31);
  double total = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kSamples, 0.5, 0.01);
}

TEST(Pcg32, UniformRejectsInvertedRange) {
  Pcg32 rng(1);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 rng(77);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.bounded(17), 17u);
  }
}

TEST(Pcg32, BoundedCoversAllResidues) {
  Pcg32 rng(77);
  std::array<int, 7> hits{};
  for (int i = 0; i < 7000; ++i) hits[rng.bounded(7)]++;
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Pcg32, BoundedRejectsZero) {
  Pcg32 rng(1);
  EXPECT_THROW((void)rng.bounded(0), PreconditionError);
}

TEST(Pcg32, NormalMomentsMatch) {
  Pcg32 rng(2024);
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.normal());
  EXPECT_NEAR(starsim::support::mean(samples), 0.0, 0.02);
  EXPECT_NEAR(starsim::support::stddev(samples), 1.0, 0.02);
}

TEST(Pcg32, NormalScaledMoments) {
  Pcg32 rng(2025);
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(10.0, 3.0));
  EXPECT_NEAR(starsim::support::mean(samples), 10.0, 0.1);
  EXPECT_NEAR(starsim::support::stddev(samples), 3.0, 0.1);
}

TEST(Pcg32, NormalRejectsNegativeSigma) {
  Pcg32 rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Pcg32, PoissonZeroLambda) {
  Pcg32 rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Pcg32, PoissonRejectsNegativeLambda) {
  Pcg32 rng(6);
  EXPECT_THROW((void)rng.poisson(-1.0), PreconditionError);
}

class PoissonMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMomentsTest, MeanAndVarianceNearLambda) {
  const double lambda = GetParam();
  Pcg32 rng(909);
  std::vector<double> samples;
  samples.reserve(40000);
  for (int i = 0; i < 40000; ++i) {
    samples.push_back(static_cast<double>(rng.poisson(lambda)));
  }
  const double m = starsim::support::mean(samples);
  const double sd = starsim::support::stddev(samples);
  EXPECT_NEAR(m, lambda, std::max(0.05, 0.05 * lambda));
  EXPECT_NEAR(sd * sd, lambda, std::max(0.3, 0.08 * lambda));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMomentsTest,
                         ::testing::Values(0.5, 2.0, 8.0, 25.0, 60.0, 400.0));

}  // namespace
