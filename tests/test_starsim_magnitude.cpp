#include "starsim/magnitude.h"

#include <gtest/gtest.h>

#include <cmath>

#include "starsim/cost_model.h"
#include "support/error.h"

namespace {

using starsim::ArithmeticCosts;
using starsim::BrightnessModel;
using starsim::FlopMeter;

TEST(Brightness, MagnitudeZeroGivesProportionFactor) {
  BrightnessModel model;
  model.proportion_factor = 1234.5;
  EXPECT_DOUBLE_EQ(model.brightness(0.0), 1234.5);
}

TEST(Brightness, EachMagnitudeStepDividesByBase) {
  const BrightnessModel model;
  for (double m = 0.0; m < 15.0; m += 1.0) {
    EXPECT_NEAR(model.brightness(m) / model.brightness(m + 1.0),
                model.magnitude_base, 1e-9);
  }
}

TEST(Brightness, FiveMagnitudesIsAboutFactor100) {
  const BrightnessModel model;
  // 2.512^5 = 100.02...: the Pogson convention the paper's Eq. (1) uses.
  EXPECT_NEAR(model.brightness(0.0) / model.brightness(5.0), 100.0, 0.1);
}

TEST(Brightness, StrictlyDecreasingInMagnitude) {
  const BrightnessModel model;
  double previous = model.brightness(-1.0);
  for (double m = 0.0; m <= 15.0; m += 0.25) {
    const double b = model.brightness(m);
    EXPECT_LT(b, previous);
    EXPECT_GT(b, 0.0);
    previous = b;
  }
}

class MagnitudeInverseTest : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeInverseTest, MagnitudeOfInvertsBrightness) {
  const BrightnessModel model;
  const double m = GetParam();
  EXPECT_NEAR(model.magnitude_of(model.brightness(m)), m, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Range, MagnitudeInverseTest,
                         ::testing::Values(0.0, 0.5, 3.0, 7.25, 12.0, 15.0));

TEST(Brightness, MagnitudeOfRejectsNonPositiveFlux) {
  const BrightnessModel model;
  EXPECT_THROW((void)model.magnitude_of(0.0),
               starsim::support::PreconditionError);
  EXPECT_THROW((void)model.magnitude_of(-1.0),
               starsim::support::PreconditionError);
}

TEST(Brightness, MeteredEvaluationCountsPowCost) {
  const BrightnessModel model;
  ArithmeticCosts costs;
  costs.pow_cost = 123.0;
  FlopMeter meter(costs);
  const double value = model.brightness(meter, 4.0);
  EXPECT_DOUBLE_EQ(value, model.brightness(4.0));
  EXPECT_EQ(meter.flops(), BrightnessModel::kArithmeticFlops + 123u);
}

TEST(FlopMeterTest, TranscendentalsPricedByCosts) {
  ArithmeticCosts costs{10.0, 20.0, 30.0};
  FlopMeter meter(costs);
  EXPECT_DOUBLE_EQ(meter.exp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(meter.pow(2.0, 10.0), 1024.0);
  EXPECT_DOUBLE_EQ(meter.sqrt(9.0), 3.0);
  meter.count_flops(5);
  EXPECT_EQ(meter.flops(), 65u);
  meter.reset();
  EXPECT_EQ(meter.flops(), 0u);
}

TEST(FlopMeterTest, CostsMatchDeviceSpec) {
  const auto spec = starsim::gpusim::DeviceSpec::gtx480();
  const ArithmeticCosts costs = ArithmeticCosts::from_device(spec);
  EXPECT_DOUBLE_EQ(costs.exp_cost, spec.exp_flop_equiv);
  EXPECT_DOUBLE_EQ(costs.pow_cost, spec.pow_flop_equiv);
  EXPECT_DOUBLE_EQ(costs.sqrt_cost, spec.sqrt_flop_equiv);
}

TEST(FlopMeterTest, NullMeterComputesWithoutCounting) {
  starsim::NullMeter meter;
  EXPECT_DOUBLE_EQ(meter.exp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(meter.pow(3.0, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(meter.sqrt(16.0), 4.0);
}

}  // namespace
