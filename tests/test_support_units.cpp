#include "support/units.h"

#include <gtest/gtest.h>

namespace {

namespace sup = starsim::support;

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(sup::format_time(2.5), "2.500 s");
  EXPECT_EQ(sup::format_time(2.5e-3), "2.500 ms");
  EXPECT_EQ(sup::format_time(2.5e-6), "2.50 us");
  EXPECT_EQ(sup::format_time(2.5e-9), "2.5 ns");
}

TEST(Units, FormatTimeBoundaries) {
  EXPECT_EQ(sup::format_time(1.0), "1.000 s");
  EXPECT_EQ(sup::format_time(0.999), "999.000 ms");
  EXPECT_EQ(sup::format_time(0.0), "0.0 ns");
}

TEST(Units, FormatBytesPicksScale) {
  EXPECT_EQ(sup::format_bytes(512), "512 B");
  EXPECT_EQ(sup::format_bytes(4096), "4.00 KiB");
  EXPECT_EQ(sup::format_bytes(4ull << 20), "4.00 MiB");
  EXPECT_EQ(sup::format_bytes(3ull << 30), "3.00 GiB");
}

TEST(Units, FormatRatePicksScale) {
  EXPECT_EQ(sup::format_rate(3.6e9), "3.60 GB/s");
  EXPECT_EQ(sup::format_rate(1.5e6), "1.50 MB/s");
  EXPECT_EQ(sup::format_rate(2e3), "2.00 KB/s");
  EXPECT_EQ(sup::format_rate(42.0), "42.0 B/s");
}

TEST(Units, FixedPrecision) {
  EXPECT_EQ(sup::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(sup::fixed(3.14159, 0), "3");
  EXPECT_EQ(sup::fixed(-1.005, 1), "-1.0");
}

TEST(Units, CompactSwitchesToScientific) {
  EXPECT_EQ(sup::compact(0.0), "0");
  EXPECT_EQ(sup::compact(1234.5), "1234");
  EXPECT_EQ(sup::compact(1.0e7), "1.000e+07");
  EXPECT_EQ(sup::compact(1.0e-5), "1.000e-05");
}

}  // namespace
