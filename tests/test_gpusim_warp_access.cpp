// Warp-level access grouping: shared-memory bank conflicts and global
// memory coalescing — the two hardware behaviours Section III-B's
// optimizations (register staging, coalesced star loads) are aimed at.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch_state.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;

struct SerialDevice : gs::Device {
  SerialDevice() : gs::Device(gs::DeviceSpec::test_small()) {
    set_parallel_blocks(false);
  }
};

// ---------- WarpAccessTracker unit level ----------

TEST(WarpAccessTracker, BroadcastIsConflictFree) {
  gs::WarpAccessTracker tracker;
  for (int t = 0; t < 32; ++t) tracker.record(0, 0, 64);  // same address
  EXPECT_EQ(tracker.bank_conflicts(32, 4), 0u);
}

TEST(WarpAccessTracker, UnitStrideIsConflictFree) {
  gs::WarpAccessTracker tracker;
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 4);
  EXPECT_EQ(tracker.bank_conflicts(32, 4), 0u);
}

TEST(WarpAccessTracker, StrideTwoIsTwoWayConflict) {
  gs::WarpAccessTracker tracker;
  // 32 threads, 8-byte stride: threads t and t+16 share bank (2t mod 32).
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 8);
  EXPECT_EQ(tracker.bank_conflicts(32, 4), 1u);  // one extra pass
}

TEST(WarpAccessTracker, SameBankAllThreadsIsWorstCase) {
  gs::WarpAccessTracker tracker;
  // 32 distinct addresses, all bank 0 (stride = 32 banks x 4 B).
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 128);
  EXPECT_EQ(tracker.bank_conflicts(32, 4), 31u);
}

TEST(WarpAccessTracker, SlotsAccumulateIndependently) {
  gs::WarpAccessTracker tracker;
  for (std::uint64_t t = 0; t < 32; ++t) {
    tracker.record(0, 0, t * 8);    // 2-way conflict
    tracker.record(0, 1, t * 4);    // clean
    tracker.record(1, 0, t * 128);  // other warp: 32-way
  }
  EXPECT_EQ(tracker.bank_conflicts(32, 4), 1u + 31u);
}

TEST(WarpAccessTracker, CoalescedLoadIsOneTransaction) {
  gs::WarpAccessTracker tracker;
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 4);
  EXPECT_EQ(tracker.transactions(128), 1u);  // 128 contiguous bytes
}

TEST(WarpAccessTracker, ScatteredLoadIsOneTransactionPerSegment) {
  gs::WarpAccessTracker tracker;
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 128);
  EXPECT_EQ(tracker.transactions(128), 32u);
}

TEST(WarpAccessTracker, TwoSegmentStraddle) {
  gs::WarpAccessTracker tracker;
  // 32 x 8-byte accesses = 256 bytes = 2 segments.
  for (std::uint64_t t = 0; t < 32; ++t) tracker.record(0, 0, t * 8);
  EXPECT_EQ(tracker.transactions(128), 2u);
}

TEST(WarpAccessTracker, SameAddressLoadsShareOneTransaction) {
  gs::WarpAccessTracker tracker;
  for (int t = 0; t < 32; ++t) tracker.record(0, 0, 4096);
  EXPECT_EQ(tracker.transactions(128), 1u);
}

// ---------- End-to-end through kernels ----------

TEST(WarpAccess, KernelUnitStrideLoadsCoalesce) {
  SerialDevice dev;
  auto buf = dev.malloc<float>(64);
  dev.memset_zero(buf);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.load(buf, ctx.thread_linear());
    co_return;
  };
  // 64 threads = 2 warps; each warp's 32 x 4 B = one 128 B transaction.
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.global_reads, 64u);
  EXPECT_EQ(r.counters.global_transactions, 2u);
}

TEST(WarpAccess, KernelStridedLoadsDoNotCoalesce) {
  SerialDevice dev;
  auto buf = dev.malloc<float>(32 * 32);
  dev.memset_zero(buf);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.load(buf, ctx.thread_linear() * 32ull);  // 128 B apart
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.global_transactions, 32u);
}

TEST(WarpAccess, DistinctAllocationsNeverCoalesce) {
  SerialDevice dev;
  auto a = dev.malloc<float>(32);
  auto b = dev.malloc<float>(32);
  dev.memset_zero(a);
  dev.memset_zero(b);
  auto kernel = [&a, &b](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    // Even threads read allocation a at offset 0, odd threads b at offset
    // 0: same byte offsets, different buffers — two transactions.
    if (ctx.thread_linear() % 2 == 0) {
      (void)ctx.load(a, 0);
    } else {
      (void)ctx.load(b, 0);
    }
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.global_transactions, 2u);
}

TEST(WarpAccess, SharedBroadcastReadHasNoConflicts) {
  SerialDevice dev;
  // The Fig. 6 pattern: every thread reads shared[0..2].
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(3);
    if (ctx.thread_linear() == 0) {
      shared.set(0, 1.0f);
      shared.set(1, 2.0f);
      shared.set(2, 3.0f);
    }
    co_await ctx.syncthreads();
    float total = 0.0f;
    total += shared.get(0);
    total += shared.get(1);
    total += shared.get(2);
    ctx.count_flops(static_cast<std::uint64_t>(total) == 6u ? 1 : 1);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(2), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.shared_bank_conflicts, 0u);
}

TEST(WarpAccess, SharedStrideTwoConflicts) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(128);
    shared.set(ctx.thread_linear() * 2ull, 1.0f);  // 8-byte stride
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.shared_bank_conflicts, 1u);
}

TEST(WarpAccess, SharedSameBankWorstCase) {
  SerialDevice dev;  // 1 KiB shared per block caps the array at 256 floats
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(8ull * 32ull);
    shared.set(ctx.thread_linear() * 32ull, 1.0f);  // all bank 0
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(8)}, kernel);
  EXPECT_EQ(r.counters.shared_bank_conflicts, 7u);
}

TEST(WarpAccess, TrackingCanBeDisabled) {
  SerialDevice dev;
  dev.set_warp_access_tracking(false);
  auto buf = dev.malloc<float>(32);
  dev.memset_zero(buf);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.load(buf, ctx.thread_linear());
    auto shared = ctx.shared_array<float>(64);
    shared.set(ctx.thread_linear() * 2ull, 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.global_transactions, 0u);
  EXPECT_EQ(r.counters.shared_bank_conflicts, 0u);
  EXPECT_EQ(r.counters.global_reads, 32u);  // plain counts still kept
  EXPECT_EQ(r.counters.shared_writes, 32u);
}

TEST(WarpAccess, ConflictsRaiseModeledSharedTime) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::LaunchConfig config{gs::Dim3(64), gs::Dim3(32)};
  gs::KernelCounters clean;
  clean.blocks_launched = 64;
  clean.threads_launched = 2048;
  clean.warps_launched = 64;
  clean.shared_reads = 100000;
  gs::KernelCounters conflicted = clean;
  conflicted.shared_bank_conflicts = 3'100'000;
  EXPECT_GT(gs::estimate_kernel_time(spec, config, conflicted).shared_s,
            gs::estimate_kernel_time(spec, config, clean).shared_s * 2);
}

TEST(WarpAccess, CoalescingLowersModeledGlobalTime) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::LaunchConfig config{gs::Dim3(64), gs::Dim3(32)};
  gs::KernelCounters scattered;
  scattered.blocks_launched = 64;
  scattered.threads_launched = 2048;
  scattered.warps_launched = 64;
  scattered.global_reads = 1'000'000;
  scattered.global_bytes_read = 4'000'000;
  scattered.global_transactions = 1'000'000;  // nothing coalesced
  gs::KernelCounters coalesced = scattered;
  coalesced.global_transactions = 1'000'000 / 32;
  EXPECT_LT(gs::estimate_kernel_time(spec, config, coalesced).global_s,
            gs::estimate_kernel_time(spec, config, scattered).global_s);
}

}  // namespace
