// Transport-layer coverage: framed Unix-socket streams (fleet/socket.h),
// the ShardHost frame loop (fleet/shardd.h), and the loopback transport's
// crash/respawn lifecycle (fleet/transport.h).
//
// The socket cases run real AF_UNIX sockets inside the test process — the
// byte-level behaviours (partial frames, deadlines, EOF, bogus length
// prefixes) need no child process. Process-level chaos (SIGKILL, SIGSTOP,
// respawn ladders) lives in test_fleet_proc.cpp against the real shardd
// binary.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fleet/shardd.h"
#include "fleet/socket.h"
#include "fleet/transport.h"
#include "fleet/wire.h"
#include "gpusim/device.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "starsim/attitude.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace fleet = starsim::fleet;
namespace support = starsim::support;
using starsim::Quaternion;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/starsim_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

SceneConfig small_scene() {
  SceneConfig scene;
  scene.image_width = 48;
  scene.image_height = 48;
  scene.roi_side = 8;
  return scene;
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 48.0f * static_cast<float>(rng.uniform());
    star.y = 48.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest simple_request(std::uint64_t seed) {
  RenderRequest request;
  request.scene = small_scene();
  request.stars = random_stars(seed, 12);
  request.simulator = SimulatorKind::kParallel;
  return request;
}

// --- FrameSocket framing ---------------------------------------------------

TEST(FleetTransport, FramesCrossTheSocketBothWaysAndEofIsOrderly) {
  const std::string path = unique_socket_path("framing");
  fleet::FrameListener listener = fleet::FrameListener::bind(path);

  const fleet::WireBuffer ping =
      fleet::encode_heartbeat(fleet::Heartbeat{41});
  const fleet::WireBuffer request = fleet::encode_request(simple_request(3));

  std::thread peer([&] {
    std::optional<fleet::FrameSocket> conn = listener.accept(5.0);
    ASSERT_TRUE(conn.has_value());
    // Echo two frames back in receive order, then close.
    for (int i = 0; i < 2; ++i) {
      std::optional<fleet::WireBuffer> frame = conn->recv_frame(now_s() + 5.0);
      ASSERT_TRUE(frame.has_value());
      conn->send_frame(*frame, now_s() + 5.0);
    }
    conn->close();
  });

  fleet::FrameSocket client = fleet::FrameSocket::connect(path, 2.0);
  client.send_frame(ping, now_s() + 5.0);
  client.send_frame(request, now_s() + 5.0);

  std::optional<fleet::WireBuffer> echo1 = client.recv_frame(now_s() + 5.0);
  std::optional<fleet::WireBuffer> echo2 = client.recv_frame(now_s() + 5.0);
  ASSERT_TRUE(echo1.has_value());
  ASSERT_TRUE(echo2.has_value());
  EXPECT_EQ(*echo1, ping);        // bytes verbatim, order preserved
  EXPECT_EQ(*echo2, request);
  EXPECT_EQ(fleet::decode_heartbeat(*echo1).sequence, 41u);

  // Peer closed between frames: orderly EOF, not an error.
  std::optional<fleet::WireBuffer> eof = client.recv_frame(now_s() + 5.0);
  EXPECT_FALSE(eof.has_value());
  peer.join();
}

TEST(FleetTransport, DeadlinesAndDeadPeersThrowTyped) {
  const std::string path = unique_socket_path("deadline");
  fleet::FrameListener listener = fleet::FrameListener::bind(path);

  // A silent peer costs exactly the deadline, then TransportTimeoutError.
  fleet::FrameSocket client = fleet::FrameSocket::connect(path, 2.0);
  std::optional<fleet::FrameSocket> server = listener.accept(2.0);
  ASSERT_TRUE(server.has_value());
  const double started = now_s();
  EXPECT_THROW((void)client.recv_frame(now_s() + 0.05),
               support::TransportTimeoutError);
  EXPECT_LT(now_s() - started, 2.0) << "timeout did not bound the wait";

  // No listener at all: ShardDownError (retryable — respawn may fix it).
  listener.close();
  try {
    (void)fleet::FrameSocket::connect(path, 0.5);
    FAIL() << "connect to a closed path succeeded";
  } catch (const support::ShardDownError& error) {
    EXPECT_TRUE(error.retryable());
  }
}

TEST(FleetTransport, BogusLengthPrefixIsRejectedBeforeAllocation) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  fleet::FrameSocket rx = fleet::FrameSocket::adopt(fds[0]);
  // A corrupt peer claims a 4 GiB frame; the cap must reject it without
  // trying to allocate.
  const std::uint8_t huge_prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fds[1], huge_prefix, sizeof(huge_prefix), 0), 4);
  EXPECT_THROW((void)rx.recv_frame(now_s() + 2.0), support::WireFormatError);
  ::close(fds[1]);
}

TEST(FleetTransport, MidFrameEofIsAShardDownNotATruncatedDecode) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  fleet::FrameSocket rx = fleet::FrameSocket::adopt(fds[0]);
  // Prefix promises 100 bytes; peer sends 3 and dies mid-frame.
  const std::uint8_t partial[7] = {100, 0, 0, 0, 'S', 'F', 2};
  ASSERT_EQ(::send(fds[1], partial, sizeof(partial), 0), 7);
  ::close(fds[1]);
  EXPECT_THROW((void)rx.recv_frame(now_s() + 2.0), support::ShardDownError);
}

// --- ShardHost: the shardd frame loop, in-process --------------------------

TEST(FleetTransport, ShardHostServesRendersHeartbeatsAndStats) {
  const std::string socket_path = unique_socket_path("host");
  fleet::ShardHostOptions options;
  options.socket_path = socket_path;
  options.index = 3;
  options.accept_poll_s = 0.01;
  options.idle_poll_s = 0.01;
  options.service.workers = 1;
  options.service.queue_capacity = 8;
  fleet::ShardHost host(std::move(options));
  std::thread server([&] { host.run(); });

  // The listener binds inside run(); wait for the path to accept.
  std::optional<fleet::FrameSocket> client;
  const double connect_deadline = now_s() + 10.0;
  while (!client.has_value() && now_s() < connect_deadline) {
    try {
      client = fleet::FrameSocket::connect(socket_path, 0.2);
    } catch (const support::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(client.has_value()) << "shard host never came up";

  // Render round trip: the served frame matches a direct render bit for
  // bit — the host is just the FrameService behind bytes.
  const RenderRequest request = simple_request(7);
  client->send_frame(fleet::encode_request(request), now_s() + 10.0);
  std::optional<fleet::WireBuffer> reply = client->recv_frame(now_s() + 30.0);
  ASSERT_TRUE(reply.has_value());
  const RenderResponse response = fleet::decode_reply(*reply);
  ASSERT_NE(response.result, nullptr);
  starsim::gpusim::Device device(starsim::gpusim::DeviceSpec::gtx480());
  EXPECT_EQ(max_abs_difference(response.result->image,
                               starsim::ParallelSimulator(device)
                                   .simulate(request.scene, request.stars)
                                   .image),
            0.0);

  // Heartbeat: ack echoes the sequence and reports the load snapshot.
  client->send_frame(fleet::encode_heartbeat(fleet::Heartbeat{99}),
                     now_s() + 10.0);
  std::optional<fleet::WireBuffer> pong = client->recv_frame(now_s() + 10.0);
  ASSERT_TRUE(pong.has_value());
  const fleet::HeartbeatAck ack = fleet::decode_heartbeat_ack(*pong);
  EXPECT_EQ(ack.sequence, 99u);
  EXPECT_EQ(ack.queue_capacity, 8u);
  EXPECT_GE(ack.completed, 1u);

  // Stats scrape: instance-labeled serve families cross the boundary.
  client->send_frame(fleet::encode_stats_request(), now_s() + 10.0);
  std::optional<fleet::WireBuffer> stats = client->recv_frame(now_s() + 10.0);
  ASSERT_TRUE(stats.has_value());
  const auto families = fleet::decode_stats_reply(*stats);
  EXPECT_FALSE(families.empty());
  bool saw_instance = false;
  for (const auto& family : families) {
    for (const auto& sample : family.samples) {
      for (const auto& label : sample.labels) {
        if (label.name == "instance" && label.value == "shard-3") {
          saw_instance = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_instance) << "families lost their instance label";

  // A failing request answers with the typed error frame, not a dropped
  // connection: attitude without a catalog is a deterministic
  // PreconditionError inside the service.
  RenderRequest bad;
  bad.scene = small_scene();
  bad.attitude = Quaternion(1.0, 0.0, 0.0, 0.0);
  client->send_frame(fleet::encode_request(bad), now_s() + 10.0);
  std::optional<fleet::WireBuffer> error = client->recv_frame(now_s() + 30.0);
  ASSERT_TRUE(error.has_value());
  EXPECT_TRUE(fleet::reply_is_error(*error));
  EXPECT_THROW((void)fleet::decode_reply(*error), support::PreconditionError);

  client->close();
  host.request_stop();
  server.join();
  EXPECT_GE(host.completed(), 1u);
}

// --- LoopbackTransport: the chaos lifecycle without a process --------------

TEST(FleetTransport, LoopbackCrashRespawnLifecycle) {
  starsim::serve::FrameServiceOptions service;
  service.workers = 1;
  service.cache_capacity = 0;
  fleet::LoopbackTransport transport(0, service);
  EXPECT_EQ(transport.instance(), "shard-0");
  EXPECT_NE(transport.loopback_shard(), nullptr);
  EXPECT_FALSE(transport.dead());
  EXPECT_EQ(transport.heartbeat_age_ms(), 0.0);

  const RenderRequest request = simple_request(11);
  const fleet::WireBuffer frame = fleet::encode_request(request);
  {
    fleet::PendingReply reply = transport.submit(frame, std::nullopt);
    const RenderResponse response = fleet::decode_reply(reply.take());
    ASSERT_NE(response.result, nullptr);
  }

  transport.crash();
  EXPECT_TRUE(transport.dead());
  EXPECT_THROW((void)transport.submit(frame, std::nullopt),
               support::ShardDownError);

  ASSERT_TRUE(transport.respawn());
  EXPECT_FALSE(transport.dead());
  {
    fleet::PendingReply reply = transport.submit(frame, std::nullopt);
    const RenderResponse response = fleet::decode_reply(reply.take());
    ASSERT_NE(response.result, nullptr);
  }

  // Wedge: submits fail as transport timeouts (the loopback model of a
  // hung peer) and the heartbeat age starts climbing for the hang
  // detector.
  transport.wedge();
  EXPECT_FALSE(transport.dead());
  {
    fleet::PendingReply reply = transport.submit(frame, std::nullopt);
    EXPECT_THROW((void)fleet::decode_reply(reply.take()),
                 support::TransportTimeoutError);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(transport.heartbeat_age_ms(), 0.0);

  // Respawn clears the wedge too.
  ASSERT_TRUE(transport.respawn());
  EXPECT_EQ(transport.heartbeat_age_ms(), 0.0);
  {
    fleet::PendingReply reply = transport.submit(frame, std::nullopt);
    const RenderResponse response = fleet::decode_reply(reply.take());
    ASSERT_NE(response.result, nullptr);
  }
  const fleet::TransportStats stats = transport.stats();
  EXPECT_GE(stats.submits, 3u);
  transport.shutdown();
}

}  // namespace
