// Network-fleet coverage: endpoint parsing, TCP framed sockets, the
// connection handshake (version + shard id + token), Jacobson/Karels RTT
// estimation, deterministic ChaosTransport fault injection, and the
// supervision ladder's partition rung (route around, never respawn).
//
// The acceptance scenario lives here too: a scripted 2-second asymmetric
// partition of one replica, during which no request may outlive its
// deadline and no respawn may fire, followed by a heal that reinstates the
// shard through the probe ladder within one dwell.
//
// In-process pieces (sockets, hosts, loopback fleets) run on threads; the
// TCP process cases spawn the real shardd binary (STARSIM_SHARDD_PATH is
// compiled in by tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/endpoint.h"
#include "fleet/router.h"
#include "fleet/rtt.h"
#include "fleet/shardd.h"
#include "fleet/socket.h"
#include "fleet/transport.h"
#include "fleet/wire.h"
#include "gpusim/device.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

namespace fleet = starsim::fleet;
namespace serve = starsim::serve;
namespace support = starsim::support;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::Star;
using starsim::StarField;
using starsim::imageio::ImageF;
using starsim::imageio::max_abs_difference;
using starsim::serve::RenderRequest;
using starsim::serve::RenderResponse;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SceneConfig small_scene(double sigma = 1.0) {
  SceneConfig scene;
  scene.image_width = 48;
  scene.image_height = 48;
  scene.roi_side = 8;
  scene.psf_sigma = sigma;
  return scene;
}

// Routing keys hash the SceneConfig, so traffic varies psf_sigma per seed
// to spread requests across the ring.
SceneConfig spread_scene(std::uint64_t seed) {
  return small_scene(0.8 + 0.01 * static_cast<double>(seed % 64));
}

StarField random_stars(std::uint64_t seed, std::size_t count) {
  starsim::support::Pcg32 rng(seed);
  StarField stars;
  for (std::size_t i = 0; i < count; ++i) {
    Star star;
    star.magnitude = 2.0f + 10.0f * static_cast<float>(rng.uniform());
    star.x = 48.0f * static_cast<float>(rng.uniform());
    star.y = 48.0f * static_cast<float>(rng.uniform());
    stars.push_back(star);
  }
  return stars;
}

RenderRequest simple_request(std::uint64_t seed) {
  RenderRequest request;
  request.scene = spread_scene(seed);
  request.stars = random_stars(seed, 12);
  request.simulator = SimulatorKind::kParallel;
  return request;
}

ImageF direct_render(const RenderRequest& request) {
  starsim::gpusim::Device device(starsim::gpusim::DeviceSpec::gtx480());
  return starsim::ParallelSimulator(device)
      .simulate(request.scene, request.stars)
      .image;
}

/// xorshift64* — the same generator ChaosTransport rolls, reused here so
/// the corruption sweep is a pure function of its seed.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

// --- Endpoint parsing ------------------------------------------------------

TEST(FleetNetEndpoint, ParsesUnixTcpAndBareSpecs) {
  const fleet::Endpoint unix_ep = fleet::Endpoint::parse("unix:/tmp/s.sock");
  EXPECT_EQ(unix_ep.kind, fleet::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/s.sock");
  EXPECT_FALSE(unix_ep.is_tcp());

  const fleet::Endpoint tcp_ep = fleet::Endpoint::parse("tcp:127.0.0.1:8443");
  EXPECT_EQ(tcp_ep.kind, fleet::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 8443);
  EXPECT_TRUE(tcp_ep.is_tcp());

  // Bare paths keep meaning what they always meant: a Unix socket path.
  const fleet::Endpoint bare = fleet::Endpoint::parse("/tmp/bare.sock");
  EXPECT_EQ(bare.kind, fleet::Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path, "/tmp/bare.sock");

  // Canonical specs round-trip through parse().
  EXPECT_EQ(fleet::Endpoint::parse(tcp_ep.to_string()).port, 8443);
  EXPECT_EQ(fleet::Endpoint::parse(unix_ep.to_string()).path, "/tmp/s.sock");

  EXPECT_THROW((void)fleet::Endpoint::parse(""), support::Error);
  EXPECT_THROW((void)fleet::Endpoint::parse("unix:"), support::Error);
  EXPECT_THROW((void)fleet::Endpoint::parse("tcp:host"), support::Error);
  EXPECT_THROW((void)fleet::Endpoint::parse("tcp:host:notaport"),
               support::Error);
  EXPECT_THROW((void)fleet::Endpoint::parse("tcp:host:70000"),
               support::Error);
}

// --- RTT estimation --------------------------------------------------------

TEST(FleetNetRtt, JacobsonKarelsSmoothingClampsAndReset) {
  fleet::RttOptions options;
  options.rto_floor_s = 0.005;
  options.rto_ceiling_s = 2.0;
  options.initial_rto_s = 0.25;
  fleet::RttEstimator rtt(options);

  // No samples yet: the configured initial RTO holds.
  EXPECT_DOUBLE_EQ(rtt.rto_s(), 0.25);
  EXPECT_EQ(rtt.samples(), 0u);

  // First sample: srtt = s, rttvar = s / 2 (RFC 6298).
  rtt.sample(0.100);
  EXPECT_DOUBLE_EQ(rtt.srtt_s(), 0.100);
  EXPECT_DOUBLE_EQ(rtt.rttvar_s(), 0.050);
  EXPECT_DOUBLE_EQ(rtt.rto_s(), 0.100 + 4.0 * 0.050);

  // Second sample folds in with the standard gains.
  rtt.sample(0.200);
  const double rttvar = (1.0 - 0.25) * 0.050 + 0.25 * std::abs(0.100 - 0.200);
  const double srtt = (1.0 - 0.125) * 0.100 + 0.125 * 0.200;
  EXPECT_NEAR(rtt.srtt_s(), srtt, 1e-12);
  EXPECT_NEAR(rtt.rttvar_s(), rttvar, 1e-12);
  EXPECT_EQ(rtt.samples(), 2u);

  // A loopback-fast path clamps to the floor, a congested one to the
  // ceiling, and non-positive samples are dropped as clock noise.
  fleet::RttEstimator fast(options);
  fast.sample(1e-6);
  EXPECT_DOUBLE_EQ(fast.rto_s(), options.rto_floor_s);
  fleet::RttEstimator slow(options);
  slow.sample(10.0);
  EXPECT_DOUBLE_EQ(slow.rto_s(), options.rto_ceiling_s);
  fast.sample(-1.0);
  EXPECT_EQ(fast.samples(), 1u);

  // reset() forgets the old latency regime entirely.
  rtt.reset();
  EXPECT_EQ(rtt.samples(), 0u);
  EXPECT_DOUBLE_EQ(rtt.rto_s(), 0.25);
}

// --- TCP framed sockets ----------------------------------------------------

TEST(FleetNetTcp, FramesCrossTcpLoopbackWithKernelAssignedPort) {
  fleet::FrameListener listener = fleet::FrameListener::bind("tcp:127.0.0.1:0");
  ASSERT_TRUE(listener.valid());
  ASSERT_TRUE(listener.endpoint().is_tcp());
  ASSERT_NE(listener.endpoint().port, 0)
      << "bind must report the kernel-assigned port back";

  const fleet::WireBuffer ping = fleet::encode_heartbeat(fleet::Heartbeat{7});
  std::thread peer([&] {
    std::optional<fleet::FrameSocket> conn = listener.accept(5.0);
    ASSERT_TRUE(conn.has_value());
    std::optional<fleet::WireBuffer> frame = conn->recv_frame(now_s() + 5.0);
    ASSERT_TRUE(frame.has_value());
    conn->send_frame(*frame, now_s() + 5.0);
    conn->close();
  });

  fleet::FrameSocket client =
      fleet::FrameSocket::connect(listener.endpoint(), 2.0);
  client.send_frame(ping, now_s() + 5.0);
  std::optional<fleet::WireBuffer> echo = client.recv_frame(now_s() + 5.0);
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(*echo, ping);
  EXPECT_EQ(fleet::decode_heartbeat(*echo).sequence, 7u);
  peer.join();
}

TEST(FleetNetTcp, RefusedConnectIsRetryableShardDownNotTimeout) {
  // Grab a loopback port the kernel just released: connecting to it must
  // refuse. Before the errno split this burned the full connect budget and
  // surfaced as TransportTimeoutError — the wrong (breaker-charging) error.
  std::uint16_t dead_port = 0;
  {
    fleet::FrameListener probe = fleet::FrameListener::bind("tcp:127.0.0.1:0");
    dead_port = probe.endpoint().port;
  }
  const double start = now_s();
  EXPECT_THROW((void)fleet::FrameSocket::connect(
                   fleet::Endpoint::tcp("127.0.0.1", dead_port), 5.0),
               support::ShardDownError);
  EXPECT_LT(now_s() - start, 2.0) << "a refused connect must fail fast";

  // Same classification for an absent Unix socket path.
  EXPECT_THROW((void)fleet::FrameSocket::connect(
                   "unix:/tmp/starsim_no_such_socket_" +
                       std::to_string(::getpid()) + ".sock",
                   5.0),
               support::ShardDownError);
}

// --- The connection handshake ----------------------------------------------

/// In-process ShardHost on a TCP ephemeral port; returns once bound.
struct HostFixture {
  explicit HostFixture(std::string token, int index = 3) {
    fleet::ShardHostOptions options;
    options.listen = "tcp:127.0.0.1:0";
    options.token = std::move(token);
    options.index = index;
    options.service.workers = 1;
    options.service.cache_capacity = 0;
    options.accept_poll_s = 0.01;
    options.idle_poll_s = 0.01;
    host = std::make_unique<fleet::ShardHost>(std::move(options));
    thread = std::thread([this] { host->run(); });
    const double deadline = now_s() + 10.0;
    while (!host->bound_endpoint().has_value() && now_s() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  ~HostFixture() {
    host->request_stop();
    if (thread.joinable()) thread.join();
  }

  [[nodiscard]] fleet::FrameSocket dial() const {
    return fleet::FrameSocket::connect(*host->bound_endpoint(), 2.0);
  }

  std::unique_ptr<fleet::ShardHost> host;
  std::thread thread;
};

/// Send `hello` on a fresh connection and return the host's reply frame.
fleet::WireBuffer greet(const HostFixture& fixture, const fleet::Hello& hello) {
  fleet::FrameSocket socket = fixture.dial();
  socket.send_frame(fleet::encode_hello(hello), now_s() + 5.0);
  std::optional<fleet::WireBuffer> reply = socket.recv_frame(now_s() + 5.0);
  EXPECT_TRUE(reply.has_value());
  return reply.value_or(fleet::WireBuffer{});
}

TEST(FleetNetHandshake, TokenVersionAndIdentityAreAllVerified) {
  HostFixture fixture("fleet-secret", /*index=*/3);
  ASSERT_TRUE(fixture.host->bound_endpoint().has_value());

  // The good greeting: matching version, index, and token -> HelloAck
  // echoing the host's identity.
  fleet::Hello good;
  good.shard_index = 3;
  good.token = "fleet-secret";
  const fleet::WireBuffer ack_frame = greet(fixture, good);
  ASSERT_FALSE(fleet::reply_is_error(ack_frame));
  const fleet::HelloAck ack = fleet::decode_hello_ack(ack_frame);
  EXPECT_EQ(ack.protocol_version, fleet::kWireVersion);
  EXPECT_EQ(ack.shard_index, 3);

  // Wrong token: a typed HandshakeError frame, and nothing about the
  // expected secret in the message.
  fleet::Hello bad_token = good;
  bad_token.token = "wrong-secret";
  const fleet::WireBuffer rejected = greet(fixture, bad_token);
  ASSERT_TRUE(fleet::reply_is_error(rejected));
  try {
    (void)fleet::decode_reply(rejected);
    FAIL() << "a wrong token must reject the handshake";
  } catch (const support::HandshakeError& error) {
    EXPECT_EQ(std::string(error.what()).find("fleet-secret"),
              std::string::npos)
        << "handshake errors must never echo token material";
  }

  // Version skew: the dialer speaks a future protocol.
  fleet::Hello skewed = good;
  skewed.protocol_version = fleet::kWireVersion + 1;
  EXPECT_THROW((void)fleet::decode_reply(greet(fixture, skewed)),
               support::HandshakeError);

  // Wrong shard index: the routing table points at the wrong peer.
  fleet::Hello misrouted = good;
  misrouted.shard_index = 9;
  EXPECT_THROW((void)fleet::decode_reply(greet(fixture, misrouted)),
               support::HandshakeError);

  // A request on an ungreeted connection is refused while a token is
  // configured: no handshake, no traffic.
  fleet::FrameSocket ungreeted = fixture.dial();
  ungreeted.send_frame(fleet::encode_request(simple_request(1)),
                       now_s() + 5.0);
  std::optional<fleet::WireBuffer> refusal =
      ungreeted.recv_frame(now_s() + 5.0);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_THROW((void)fleet::decode_reply(*refusal), support::HandshakeError);

  // After a valid greeting the same connection serves renders normally.
  fleet::FrameSocket session = fixture.dial();
  session.send_frame(fleet::encode_hello(good), now_s() + 5.0);
  ASSERT_TRUE(session.recv_frame(now_s() + 5.0).has_value());
  const RenderRequest request = simple_request(2);
  session.send_frame(fleet::encode_request(request), now_s() + 30.0);
  std::optional<fleet::WireBuffer> rendered = session.recv_frame(now_s() + 30.0);
  ASSERT_TRUE(rendered.has_value());
  const RenderResponse response = fleet::decode_reply(*rendered);
  ASSERT_NE(response.result, nullptr);
  EXPECT_EQ(max_abs_difference(response.result->image, direct_render(request)),
            0.0);
}

TEST(FleetNetHandshake, EmptyTokenKeepsPreHandshakeDialersWorking) {
  // No token configured: raw request frames with no greeting still serve —
  // the pre-handshake wire contract survives.
  HostFixture fixture("", /*index=*/0);
  ASSERT_TRUE(fixture.host->bound_endpoint().has_value());
  fleet::FrameSocket socket = fixture.dial();
  const RenderRequest request = simple_request(5);
  socket.send_frame(fleet::encode_request(request), now_s() + 30.0);
  std::optional<fleet::WireBuffer> reply = socket.recv_frame(now_s() + 30.0);
  ASSERT_TRUE(reply.has_value());
  const RenderResponse response = fleet::decode_reply(*reply);
  ASSERT_NE(response.result, nullptr);
}

// --- Wire-header CRC under corruption --------------------------------------

TEST(FleetNetCrc, SeededTenThousandBitFlipSweepAlwaysFailsClosed) {
  // Every single-bit flip anywhere in a frame — magic, version, kind, CRC
  // field, or payload — must decode to WireFormatError, never to a
  // plausible frame. 10k seeded flips across three frame shapes.
  const std::vector<fleet::WireBuffer> shapes = {
      fleet::encode_request(simple_request(11)),
      fleet::encode_heartbeat_ack(fleet::HeartbeatAck{4, 2, 64, 9}),
      fleet::encode_error(support::OverloadShedError("synthetic")),
  };
  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  std::uint64_t failed_closed = 0;
  constexpr std::uint64_t kSweep = 10000;
  for (std::uint64_t i = 0; i < kSweep; ++i) {
    fleet::WireBuffer mutated = shapes[i % shapes.size()];
    const std::uint64_t bit =
        next_rand(state) % (static_cast<std::uint64_t>(mutated.size()) * 8u);
    mutated[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      (void)fleet::frame_kind(mutated);
    } catch (const support::WireFormatError&) {
      ++failed_closed;
    }
  }
  EXPECT_EQ(failed_closed, kSweep)
      << "a corrupted frame decoded as something other than WireFormatError";

  // And reseal_frame (the deliberate-patch path) restores decodability:
  // the sweep is testing the CRC, not a coincidentally fragile encoder.
  fleet::WireBuffer patched = shapes[0];
  patched.back() ^= 0x01;
  EXPECT_THROW((void)fleet::frame_kind(patched), support::WireFormatError);
  fleet::reseal_frame(patched);
  EXPECT_EQ(fleet::frame_kind(patched), fleet::MessageKind::kRequest);
}

TEST(FleetNetCrc, ChaosCorruptionSurfacesAsWireFormatErrorEndToEnd) {
  serve::FrameServiceOptions shard_options;
  shard_options.workers = 1;
  shard_options.cache_capacity = 0;
  fleet::ChaosNetOptions chaos_options;
  chaos_options.seed = 42;
  chaos_options.corrupt_rate = 1.0;  // every reply loses one bit
  fleet::ChaosTransport transport(
      std::make_unique<fleet::LoopbackTransport>(0, shard_options),
      chaos_options);

  for (std::uint64_t i = 0; i < 8; ++i) {
    fleet::PendingReply reply = transport.submit(
        fleet::encode_request(simple_request(20 + i)), std::nullopt);
    const fleet::WireBuffer bytes = reply.take();
    EXPECT_THROW((void)fleet::decode_reply(bytes), support::WireFormatError)
        << "corrupted reply " << i << " decoded";
  }
  EXPECT_EQ(transport.net_stats().faults_corrupted, 8u);
  transport.shutdown();
}

// --- Deterministic chaos ---------------------------------------------------

TEST(FleetNetChaos, SameSeedSameTrafficSameFaults) {
  serve::FrameServiceOptions shard_options;
  shard_options.workers = 1;
  shard_options.cache_capacity = 0;
  fleet::ChaosNetOptions chaos_options;
  chaos_options.seed = 7;
  chaos_options.drop_rate = 0.3;
  chaos_options.duplicate_rate = 0.2;
  chaos_options.corrupt_rate = 0.2;

  const auto run = [&]() -> fleet::TransportNetStats {
    fleet::ChaosTransport transport(
        std::make_unique<fleet::LoopbackTransport>(0, shard_options),
        chaos_options);
    for (std::uint64_t i = 0; i < 32; ++i) {
      try {
        fleet::PendingReply reply = transport.submit(
            fleet::encode_request(simple_request(i)), std::nullopt);
        (void)reply.take();
      } catch (const support::Error&) {
        // Dropped requests surface as typed errors; that is the point.
      }
    }
    const fleet::TransportNetStats net = transport.net_stats();
    transport.shutdown();
    return net;
  };

  const fleet::TransportNetStats first = run();
  const fleet::TransportNetStats second = run();
  EXPECT_EQ(first.faults_dropped, second.faults_dropped);
  EXPECT_EQ(first.faults_duplicated, second.faults_duplicated);
  EXPECT_EQ(first.faults_corrupted, second.faults_corrupted);
  EXPECT_GT(first.faults_dropped, 0u) << "a 30% drop rate never fired in 32";

  // Dropped requests fail immediately, not after burning the wall clock.
  // take() never throws — failures travel as typed error frames that
  // decode_reply rethrows, exactly as the router consumes them.
  fleet::ChaosNetOptions drop_all;
  drop_all.drop_rate = 1.0;
  fleet::ChaosTransport dropper(
      std::make_unique<fleet::LoopbackTransport>(1, shard_options), drop_all);
  const double start = now_s();
  fleet::PendingReply dropped =
      dropper.submit(fleet::encode_request(simple_request(1)), 30.0);
  EXPECT_THROW((void)fleet::decode_reply(dropped.take()),
               support::TransportTimeoutError);
  EXPECT_LT(now_s() - start, 1.0);
  dropper.shutdown();
}

TEST(FleetNetChaos, ReorderSwapsDeliveryWithoutCrossingReplyBytes) {
  serve::FrameServiceOptions shard_options;
  shard_options.workers = 2;
  shard_options.cache_capacity = 0;
  fleet::ChaosNetOptions chaos_options;
  chaos_options.seed = 3;
  chaos_options.reorder_rate = 1.0;  // every reply is held for the next
  chaos_options.reorder_hold_ms = 50.0;
  fleet::ChaosTransport transport(
      std::make_unique<fleet::LoopbackTransport>(0, shard_options),
      chaos_options);

  // Two concurrent requests: each reply must decode to ITS OWN frame —
  // reorder may swap completion order, never payloads.
  const RenderRequest a = simple_request(31);
  const RenderRequest b = simple_request(47);
  fleet::PendingReply ra =
      transport.submit(fleet::encode_request(a), std::nullopt);
  fleet::PendingReply rb =
      transport.submit(fleet::encode_request(b), std::nullopt);
  const RenderResponse response_a = fleet::decode_reply(ra.take());
  const RenderResponse response_b = fleet::decode_reply(rb.take());
  ASSERT_NE(response_a.result, nullptr);
  ASSERT_NE(response_b.result, nullptr);
  EXPECT_EQ(max_abs_difference(response_a.result->image, direct_render(a)),
            0.0);
  EXPECT_EQ(max_abs_difference(response_b.result->image, direct_render(b)),
            0.0);
  EXPECT_GE(transport.net_stats().faults_reordered, 1u);

  // A lone reply on a quiet link releases at the bounded hold, never hangs.
  fleet::PendingReply lone =
      transport.submit(fleet::encode_request(simple_request(53)), std::nullopt);
  const RenderResponse lone_response = fleet::decode_reply(lone.take());
  ASSERT_NE(lone_response.result, nullptr);
  transport.shutdown();
}

// --- The acceptance scenario: asymmetric partition -------------------------

TEST(FleetNet, AsymmetricPartitionRoutesAroundNoRespawnReinstatesOnHeal) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.router_threads = 2;
  options.probe_after_ms = 5.0;  // reinstate within one short dwell
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.supervise = true;
  options.supervision.poll_ms = 10.0;
  // The hang ladder must NOT win this race: the partition rung (keyed off
  // the chaos transport's 100 ms threshold) has to fire long before a
  // 30 s hang would.
  options.supervision.hang_after_ms = 30000.0;
  options.chaos_shard = 0;
  options.net_chaos.partition_after_ms = 100.0;
  fleet::ShardRouter router(options);

  // Warm traffic before the cut.
  for (std::uint64_t i = 0; i < 4; ++i) {
    (void)router.render(simple_request(i));
  }

  fleet::ChaosTransport* chaos = router.chaos_transport(0);
  ASSERT_NE(chaos, nullptr);
  EXPECT_EQ(router.chaos_transport(1), nullptr);

  // Asymmetric cut: requests reach shard 0 (it renders), replies vanish.
  chaos->partition(/*block_requests=*/false, /*block_replies=*/true);

  // Drive deadline-carrying traffic across the 2 s partition. Every
  // request must resolve well inside its deadline (shard 0's immediate
  // injected timeout fails it over to shard 1), and the ladder must mark
  // shard 0 partitioned — never respawn it.
  constexpr double kDeadlineS = 5.0;
  bool saw_partitioned = false;
  std::vector<std::future<RenderResponse>> futures;
  const double cut_s = now_s();
  std::uint64_t seed = 100;
  while (now_s() - cut_s < 2.0) {
    RenderRequest request = simple_request(seed++);
    request.deadline_s = kDeadlineS;
    futures.push_back(router.submit(std::move(request)));
    saw_partitioned = saw_partitioned ||
                      router.shard_state(0) == fleet::ShardState::kPartitioned;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(saw_partitioned)
      << "the ladder never diagnosed the partition while it was open";

  std::uint64_t frames = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    // "No request hangs past its deadline": ready within deadline + slack.
    ASSERT_EQ(futures[i].wait_for(std::chrono::duration<double>(
                  kDeadlineS + 5.0)),
              std::future_status::ready)
        << "request " << i << " outlived its deadline under the partition";
    try {
      const RenderResponse response = futures[i].get();
      ASSERT_NE(response.result, nullptr);
      ++frames;
    } catch (const support::Error&) {
      // A typed in-deadline failure is acceptable; a hang is not.
    }
  }
  EXPECT_GE(frames, futures.size() / 2)
      << "the healthy replica did not carry the partitioned load";

  // Route-around only: zero respawns, zero crash/hang diagnoses.
  {
    const fleet::FleetStats mid = router.stats();
    EXPECT_EQ(mid.respawns_attempted, 0u) << "a partition must not respawn";
    EXPECT_EQ(mid.respawns_succeeded, 0u);
    EXPECT_EQ(mid.hangs_detected, 0u);
    EXPECT_GE(mid.partitions_detected, 1u);
  }

  // Heal: liveness returns, the ladder fires partition_healed, and the
  // probe path reinstates within one dwell of live traffic.
  chaos->heal();
  const double heal_deadline = now_s() + 30.0;
  std::uint64_t nonce = 500;
  while (router.shard_state(0) != fleet::ShardState::kHealthy &&
         now_s() < heal_deadline) {
    try {
      (void)router.render(simple_request(nonce++));
    } catch (const support::Error&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(router.shard_state(0), fleet::ShardState::kHealthy)
      << "healed shard was never reinstated";

  router.stop();
  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_GE(stats.partitions_detected, 1u);
  EXPECT_GE(stats.partitions_healed, 1u);
  EXPECT_EQ(stats.respawns_attempted, 0u);
  EXPECT_GT(stats.reinstates, 0u);
}

// --- Net metric families ---------------------------------------------------

TEST(FleetNet, NetFamiliesAreAlwaysInTheExposition) {
  // Even a pure loopback fleet (no sockets, no chaos) must emit every
  // starsim_fleet_net_* family — zeros, not absences — so dashboards and
  // trace-check --fleet can rely on the names unconditionally.
  fleet::FleetOptions options;
  options.shards = 2;
  options.router_threads = 1;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  fleet::ShardRouter router(options);
  (void)router.render(simple_request(1));

  const std::string exposition = router.scrape_metrics();
  for (const char* family : {
           "starsim_fleet_net_rtt_seconds",
           "starsim_fleet_net_handshakes_total",
           "starsim_fleet_net_dial_backoffs_total",
           "starsim_fleet_net_partitions_total",
           "starsim_fleet_net_faults_injected_total",
       }) {
    EXPECT_NE(exposition.find(family), std::string::npos)
        << family << " missing from the fleet exposition";
  }
  EXPECT_NE(exposition.find("6 partitioned"), std::string::npos)
      << "shard_state help text must document the partition state";
  router.stop();
}

// --- TCP process shards: the real shardd over real TCP ---------------------

TEST(FleetNetTcp, TcpProcessShardsServeBitIdenticalFramesWithTokenAuth) {
  // The token travels via the environment (inherited by posix_spawn) and
  // via the router's construction-time default — never argv.
  ASSERT_EQ(::setenv("STARSIM_FLEET_TOKEN", "net-suite-token", 1), 0);

  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.router_threads = 2;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.process_shards = true;
  options.tcp_shards = true;
  options.shardd_path = STARSIM_SHARDD_PATH;
  options.transport.heartbeat_period_s = 0.05;
  {
    fleet::ShardRouter router(options);

    for (std::uint64_t i = 0; i < 4; ++i) {
      const RenderRequest request = simple_request(i);
      const RenderResponse response = router.render(request);
      ASSERT_NE(response.result, nullptr);
      EXPECT_EQ(max_abs_difference(response.result->image,
                                   direct_render(request)),
                0.0)
          << "frame " << i << " crossed TCP wrong";
    }

    // Handshakes ran on every fresh connection, and heartbeat round trips
    // fed the RTT estimator real samples.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    fleet::TransportNetStats net_total{};
    for (int s = 0; s < 2; ++s) {
      const fleet::TransportNetStats net = router.transport(s).net_stats();
      net_total.handshakes_ok += net.handshakes_ok;
      net_total.handshakes_failed += net.handshakes_failed;
      net_total.rtt_samples += net.rtt_samples;
    }
    EXPECT_GE(net_total.handshakes_ok, 2u);
    EXPECT_EQ(net_total.handshakes_failed, 0u);
    EXPECT_GE(net_total.rtt_samples, 2u);

    // The adaptive partition threshold is live and above its floor.
    EXPECT_GE(router.transport(0).partition_after_ms(), 250.0);

    const std::string exposition = router.scrape_metrics();
    EXPECT_NE(exposition.find("starsim_fleet_net_rtt_seconds"),
              std::string::npos);
    EXPECT_NE(exposition.find("result=\"ok\""), std::string::npos);

    router.stop();
    const fleet::FleetStats stats = router.stats();
    EXPECT_EQ(stats.in_flight(), 0u);
    EXPECT_EQ(stats.completed, 4u);
  }
  ASSERT_EQ(::unsetenv("STARSIM_FLEET_TOKEN"), 0);
}

TEST(FleetNetTcp, DialBackoffOpensAfterPeerDiesAndFastFails) {
  // One shardd over TCP, no supervision, heartbeats off: dialing is fully
  // under this test's control.
  fleet::FleetOptions options;
  options.shards = 1;
  options.replicas = 1;
  options.router_threads = 1;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;
  options.process_shards = true;
  options.tcp_shards = true;
  options.shardd_path = STARSIM_SHARDD_PATH;
  options.transport.heartbeat_period_s = 0.0;  // no background dials
  options.transport.reconnect_backoff_ms = 200.0;
  options.transport.reconnect_backoff_max_ms = 400.0;
  fleet::ShardRouter router(options);
  (void)router.render(simple_request(1));

  // Kill the process behind the transport's back (crash_shard() would mark
  // the transport dead and short-circuit the dial path we are testing).
  auto* transport =
      dynamic_cast<fleet::SocketTransport*>(&router.transport(0));
  ASSERT_NE(transport, nullptr);
  transport->process().kill_now();

  // First submit dials the dead endpoint (refused -> ShardDownError, opens
  // the backoff window); immediate retries fast-fail inside the window.
  // The cached connection from the warm render dies on first use too.
  std::uint64_t down_errors = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    try {
      fleet::PendingReply reply = transport->submit(
          fleet::encode_request(simple_request(2 + i)), 2.0);
      // take() encodes failures as typed error frames; decode_reply
      // rethrows them the way the router sees them.
      (void)fleet::decode_reply(reply.take());
    } catch (const support::ShardDownError&) {
      ++down_errors;
    } catch (const support::Error&) {
    }
  }
  EXPECT_GE(down_errors, 1u);
  EXPECT_GE(transport->net_stats().dial_backoffs, 1u)
      << "rapid redials against a dead peer never hit the backoff window";
  router.stop();
}

}  // namespace
