#include "starsim/render.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "imageio/bmp.h"
#include "imageio/pnm.h"

namespace {

namespace io = starsim::imageio;
using starsim::RenderOptions;

io::ImageF star_like_image() {
  io::ImageF flux(64, 64);
  flux(32, 32) = 10.0f;
  flux(31, 32) = 6.0f;
  flux(33, 32) = 6.0f;
  flux(32, 31) = 6.0f;
  flux(32, 33) = 6.0f;
  flux(10, 10) = 2.0f;
  return flux;
}

TEST(Render, AutoExposedFrameHasVisibleStars) {
  const io::ImageU8 frame = starsim::render_display_image(star_like_image());
  EXPECT_GT(frame(32, 32), 200);
  EXPECT_GT(frame(10, 10), 0);
  EXPECT_EQ(frame(0, 0), 0);  // background stays black
}

TEST(Render, NoiseOptionPerturbsBackground) {
  RenderOptions options;
  options.apply_noise = true;
  options.noise.read_noise_electrons = 5.0;
  options.noise.gain_electrons_per_flux = 1.0;
  options.tonemap.auto_expose = false;
  options.tonemap.full_scale = 10.0f;
  const io::ImageU8 noisy =
      starsim::render_display_image(star_like_image(), options);
  int nonzero_background = 0;
  for (int x = 0; x < 30; ++x) {
    if (noisy(x, 0) > 0) ++nonzero_background;
  }
  EXPECT_GT(nonzero_background, 3);
}

TEST(Render, SaveWritesBothFormats) {
  const std::string prefix = ::testing::TempDir() + "/render_test";
  starsim::save_star_image(star_like_image(), prefix);
  const io::ImageU8 bmp = io::read_bmp_gray(prefix + ".bmp");
  const io::ImageU8 pgm = io::read_pgm8(prefix + ".pgm");
  EXPECT_EQ(bmp.width(), 64);
  EXPECT_EQ(bmp, pgm);  // identical content in both containers
  std::remove((prefix + ".bmp").c_str());
  std::remove((prefix + ".pgm").c_str());
}

TEST(Render, DeterministicWithFixedNoiseSeed) {
  RenderOptions options;
  options.apply_noise = true;
  const io::ImageU8 a =
      starsim::render_display_image(star_like_image(), options);
  const io::ImageU8 b =
      starsim::render_display_image(star_like_image(), options);
  EXPECT_EQ(a, b);
}

}  // namespace
