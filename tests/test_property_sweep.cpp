// Randomized cross-simulator consistency: for a spread of seeded random
// configurations (image size, ROI side, PSF width, star count, pixel
// model), every execution path must reproduce the sequential baseline.
// This is the repository's broadest invariant — it exercises coordinate
// math, clipping, kernel geometry, tiling, and both PSF models jointly.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/device.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/rng.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::SceneConfig;
using starsim::StarField;

struct RandomCase {
  SceneConfig scene;
  StarField stars;
};

RandomCase make_case(std::uint64_t seed) {
  starsim::support::Pcg32 rng(seed);
  RandomCase c;
  c.scene.image_width = static_cast<int>(48 + rng.bounded(160));
  c.scene.image_height = static_cast<int>(48 + rng.bounded(160));
  c.scene.roi_side = static_cast<int>(1 + rng.bounded(18));
  c.scene.psf_sigma = rng.uniform(0.5, 3.5);
  c.scene.pixel_integration = rng.bounded(2) == 0;

  starsim::WorkloadConfig workload;
  workload.star_count = 1 + rng.bounded(400);
  workload.image_width = c.scene.image_width;
  workload.image_height = c.scene.image_height;
  workload.integer_positions = rng.bounded(2) == 0;
  workload.seed = seed * 977 + 13;
  c.stars = generate_stars(workload);
  return c;
}

double scale_of(const starsim::imageio::ImageF& image) {
  double peak = 0.0;
  for (float v : image.pixels()) peak = std::max(peak, static_cast<double>(v));
  return peak > 0.0 ? peak : 1.0;
}

class RandomConfigTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigTest, ParallelMatchesSequential) {
  const RandomCase c = make_case(GetParam());
  starsim::SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator par(device);
  const auto a = seq.simulate(c.scene, c.stars).image;
  const auto b = par.simulate(c.scene, c.stars).image;
  ASSERT_LT(max_abs_difference(a, b) / scale_of(a), 1e-4)
      << "roi=" << c.scene.roi_side << " sigma=" << c.scene.psf_sigma
      << " stars=" << c.stars.size()
      << " integrated=" << c.scene.pixel_integration;
}

TEST_P(RandomConfigTest, TiledParallelMatchesSequential) {
  const RandomCase c = make_case(GetParam());
  starsim::SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelOptions options;
  options.allow_tiling = true;
  options.tile_side = 8;  // forces tiling for every ROI above 8
  starsim::ParallelSimulator tiled(device, options);
  const auto a = seq.simulate(c.scene, c.stars).image;
  const auto b = tiled.simulate(c.scene, c.stars).image;
  ASSERT_LT(max_abs_difference(a, b) / scale_of(a), 1e-4);
}

TEST_P(RandomConfigTest, OpenMpMatchesSequential) {
  const RandomCase c = make_case(GetParam());
  starsim::SequentialSimulator seq;
  starsim::OpenMpSimulator omp(3);
  const auto a = seq.simulate(c.scene, c.stars).image;
  const auto b = omp.simulate(c.scene, c.stars).image;
  ASSERT_LT(max_abs_difference(a, b) / scale_of(a), 1e-5);
}

TEST_P(RandomConfigTest, TotalFluxAgreesAcrossPaths) {
  // Weaker than pixel equality but sensitive to lost/duplicated work:
  // the summed flux of the GPU image matches the sequential one closely.
  const RandomCase c = make_case(GetParam());
  starsim::SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator par(device);
  const double a = total_flux(seq.simulate(c.scene, c.stars).image);
  const double b = total_flux(par.simulate(c.scene, c.stars).image);
  ASSERT_NEAR(a, b, std::abs(a) * 1e-5 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
