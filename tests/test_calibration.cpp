// Calibration acceptance tests: the modeled GTX480 must reproduce the
// *shapes* of the paper's evaluation (DESIGN.md documents the expected
// bands). These run on the analytic predictor — the counter-exactness tests
// in test_starsim_parallel/adaptive tie the predictor to the functional
// execution, so these bands transfer to the measured benches.
#include <gtest/gtest.h>

#include <vector>

#include "starsim/selector.h"
#include "starsim/workload.h"
#include "support/stats.h"

namespace {

using starsim::Prediction;
using starsim::SceneConfig;
using starsim::SimulatorKind;
using starsim::SimulatorSelector;

SceneConfig paper_scene(int roi = starsim::kTest1RoiSide) {
  SceneConfig scene;  // 1024 x 1024 per the paper
  scene.roi_side = roi;
  return scene;
}

TEST(Calibration, Test1InflectionNearTwoToThe13) {
  // Paper: "in test 1 ... the inflection point comes when number of stars
  // reach 2^13". Accept one octave of slack either way.
  const SimulatorSelector selector;
  std::size_t inflection = 0;
  for (std::size_t n : starsim::test1_star_counts()) {
    if (selector.predict(paper_scene(), n).best_gpu ==
        SimulatorKind::kAdaptive) {
      inflection = n;
      break;
    }
  }
  ASSERT_NE(inflection, 0u) << "adaptive never overtakes parallel";
  EXPECT_GE(inflection, 1u << 12);
  EXPECT_LE(inflection, 1u << 14);
}

TEST(Calibration, Test2InflectionNearRoiTen) {
  // Paper: "the inflection point comes when side of ROI meets 10".
  const SimulatorSelector selector;
  int inflection = 0;
  for (int side : starsim::test2_roi_sides()) {
    if (selector.predict(paper_scene(side), starsim::kTest2StarCount)
            .best_gpu == SimulatorKind::kAdaptive) {
      inflection = side;
      break;
    }
  }
  ASSERT_NE(inflection, 0) << "adaptive never overtakes parallel";
  EXPECT_GE(inflection, 6);
  EXPECT_LE(inflection, 12);
}

TEST(Calibration, InflectionsAgreeOnThreadCount) {
  // The paper's consistency observation: both inflections occur at the
  // same total work (8192 stars x 100-pixel ROIs), "or else, there must be
  // mistakes in either simulator".
  const SimulatorSelector selector;
  const Prediction at_cross =
      selector.predict(paper_scene(10), starsim::kTest2StarCount);
  const double gap = at_cross.parallel.application_s() -
                     at_cross.adaptive.application_s();
  // Within 25% of the adaptive fixed cost of the crossing point.
  EXPECT_LT(std::abs(gap), 0.25 * 0.92e-3 + 0.4e-3);
}

TEST(Calibration, TableTwoGflopsBand) {
  // Table II: parallel 95.07 GFLOPS, adaptive 93.8, on a 168 GFLOPS fp64
  // peak. Parallel must land within ~20% of 95 and stay the higher of the
  // two (our adaptive kernel is leaner than the paper's, DESIGN.md).
  const SimulatorSelector selector;
  const Prediction p = selector.predict(paper_scene(), 1u << 17);
  EXPECT_GT(p.parallel.achieved_gflops, 75.0);
  EXPECT_LT(p.parallel.achieved_gflops, 115.0);
  EXPECT_GT(p.parallel.achieved_gflops, p.adaptive.achieved_gflops);
}

TEST(Calibration, SpeedupsSpanOneToTwoOrdersOfMagnitude) {
  // Abstract: "one to two orders of magnitude speedups with a maximum of
  // 270x ... the average speedup is around 97 times".
  const SimulatorSelector selector;
  std::vector<double> speedups;
  double max_speedup = 0.0;
  for (std::size_t n : starsim::test1_star_counts()) {
    const Prediction p = selector.predict(paper_scene(), n);
    const double s = p.sequential_s / p.parallel.application_s();
    speedups.push_back(s);
    max_speedup = std::max(max_speedup, s);
  }
  EXPECT_GT(max_speedup, 100.0);
  EXPECT_LT(max_speedup, 500.0);
  // The large-workload half of the sweep averages around the paper's 97x.
  const std::vector<double> upper(speedups.end() - 6, speedups.end());
  const double avg = starsim::support::mean(upper);
  EXPECT_GT(avg, 50.0);
  EXPECT_LT(avg, 300.0);
}

TEST(Calibration, AdaptiveAdvantageBeyondInflection) {
  // "The adaptive simulator achieved up to 1.8x compared with the parallel
  // one over the inflection point" — our texture path is cheaper than
  // Fermi's, so accept 1.2x..4x (documented deviation).
  const SimulatorSelector selector;
  const Prediction p = selector.predict(paper_scene(), 1u << 17);
  const double ratio =
      p.parallel.application_s() / p.adaptive.application_s();
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 4.0);
}

TEST(Calibration, TableOneTransmissionTrend) {
  // Table I: transmission 2.43 ms at 2^5 stars rising to 3.01 ms at 2^17
  // (the star array adds 2 MiB).
  const SimulatorSelector selector;
  const Prediction small = selector.predict(paper_scene(), 1u << 5);
  const Prediction large = selector.predict(paper_scene(), 1u << 17);
  const double transfer_small = small.adaptive.h2d_s + small.adaptive.d2h_s;
  const double transfer_large = large.adaptive.h2d_s + large.adaptive.d2h_s;
  EXPECT_NEAR(transfer_small, 2.43e-3, 0.5e-3);
  EXPECT_NEAR(transfer_large, 3.01e-3, 0.6e-3);
  EXPECT_GT(transfer_large, transfer_small);
}

TEST(Calibration, TableOneLutBuildAndBindConstants) {
  const SimulatorSelector selector;
  for (std::size_t n : {32u, 8192u, 131072u}) {
    const Prediction p = selector.predict(paper_scene(), n);
    // Build 0.70-0.72 ms and binding 0.20-0.22 ms across the whole sweep.
    EXPECT_NEAR(p.adaptive.lut_build_s, 0.71e-3, 0.15e-3);
    EXPECT_NEAR(p.adaptive.texture_bind_s, 0.21e-3, 0.02e-3);
  }
}

TEST(Calibration, KernelTimeSmallBelowTwoToThe13) {
  // Fig. 11: "when the number of stars is less than 2^13, the kernel
  // execution time of simulators increases little ... and the non-kernel
  // overhead takes up most part of application time".
  const SimulatorSelector selector;
  for (std::size_t n : {32u, 256u, 2048u}) {
    const Prediction p = selector.predict(paper_scene(), n);
    EXPECT_LT(p.parallel.kernel_s, p.parallel.non_kernel_s());
    EXPECT_LT(p.adaptive.kernel_s, p.adaptive.non_kernel_s());
  }
  // And beyond the inflection the kernel dominates the parallel simulator.
  const Prediction big = selector.predict(paper_scene(), 1u << 17);
  EXPECT_GT(big.parallel.kernel_s, big.parallel.non_kernel_s());
}

TEST(Calibration, NonKernelShareFallsWithRoi) {
  // Fig. 16: the non-kernel percentage drops as ROI grows, faster for the
  // parallel simulator.
  const SimulatorSelector selector;
  double prev_parallel = 1.1;
  for (int side : {4, 8, 16, 32}) {
    const Prediction p =
        selector.predict(paper_scene(side), starsim::kTest2StarCount);
    const double share = p.parallel.non_kernel_fraction();
    EXPECT_LT(share, prev_parallel);
    prev_parallel = share;
  }
  const Prediction at32 =
      selector.predict(paper_scene(32), starsim::kTest2StarCount);
  EXPECT_LT(at32.parallel.non_kernel_fraction(),
            at32.adaptive.non_kernel_fraction());
}

TEST(Calibration, SequentialCompetitiveOnlyForTinyFields) {
  // Section IV-D bounds the sequential simulator's niche at ~2^7 stars;
  // accept anywhere below 2^11 on our host model, but it must exist and it
  // must end.
  const SimulatorSelector selector;
  EXPECT_EQ(selector.choose(paper_scene(), 16), SimulatorKind::kSequential);
  EXPECT_NE(selector.choose(paper_scene(), 1u << 11),
            SimulatorKind::kSequential);
}

TEST(Calibration, SequentialScalesLinearlyGpuFlatlines) {
  // Fig. 9's qualitative shape: sequential time is linear in stars; the
  // GPU application time is nearly flat below the saturation knee.
  const SimulatorSelector selector;
  std::vector<double> stars;
  std::vector<double> seq_times;
  for (std::size_t n : starsim::test1_star_counts()) {
    const Prediction p = selector.predict(paper_scene(), n);
    stars.push_back(static_cast<double>(n));
    seq_times.push_back(p.sequential_s);
  }
  const auto fit = starsim::support::fit_line(stars, seq_times);
  EXPECT_GT(fit.r_squared, 0.999999);  // exactly linear by construction
  const Prediction low = selector.predict(paper_scene(), 1u << 5);
  const Prediction mid = selector.predict(paper_scene(), 1u << 10);
  // 32x the stars, far less than 4x the application time.
  EXPECT_LT(mid.parallel.application_s(),
            low.parallel.application_s() * 4.0);
}

}  // namespace
