// Golden-image regression tests: a fixed scene rendered through the full
// pipeline must keep producing byte-identical 8-bit frames. Guards the
// numeric path (PSF, brightness, accumulation, tonemap) against silent
// drift; the hash is FNV-1a over the tonemapped pixels.
#include <gtest/gtest.h>

#include <cstdint>

#include "gpusim/device.h"
#include "imageio/tonemap.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::SceneConfig;
using starsim::StarField;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

SceneConfig golden_scene() {
  SceneConfig scene;
  scene.image_width = 128;
  scene.image_height = 128;
  scene.roi_side = 10;
  scene.psf_sigma = 1.7;
  return scene;
}

StarField golden_stars() {
  starsim::WorkloadConfig workload;
  workload.star_count = 300;
  workload.image_width = 128;
  workload.image_height = 128;
  workload.seed = 20120521;
  workload.integer_positions = false;
  return generate_stars(workload);
}

starsim::imageio::ImageU8 quantize(const starsim::imageio::ImageF& flux) {
  starsim::imageio::TonemapOptions tonemap;
  tonemap.auto_expose = true;
  tonemap.percentile = 99.5f;
  return starsim::imageio::tonemap_u8(flux, tonemap);
}

// Recorded once from a verified build; see the file comment before
// changing. A deliberate model change that shifts these values must update
// them in the same commit that explains the change.
constexpr std::uint64_t kGoldenSequentialHash = 0x31c3e5727a6435d0ull;

TEST(Golden, SequentialFrameHashStable) {
  starsim::SequentialSimulator sim;
  const auto result = sim.simulate(golden_scene(), golden_stars());
  const auto frame = quantize(result.image);
  EXPECT_EQ(fnv1a(frame.pixels()), kGoldenSequentialHash)
      << "actual hash: 0x" << std::hex << fnv1a(frame.pixels());
}

TEST(Golden, ParallelFrameQuantizesIdentically) {
  // Float accumulation order differs, but after 8-bit quantization the GPU
  // frame must match the sequential golden exactly.
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator par(device);
  starsim::SequentialSimulator seq;
  const auto scene = golden_scene();
  const auto stars = golden_stars();
  const auto a = quantize(seq.simulate(scene, stars).image);
  const auto b = quantize(par.simulate(scene, stars).image);
  EXPECT_EQ(a, b);
}

TEST(Golden, WorkloadGenerationStable) {
  // The golden frame depends on the workload stream staying fixed; pin the
  // first stars of the canonical seed.
  const StarField stars = golden_stars();
  ASSERT_EQ(stars.size(), 300u);
  EXPECT_NEAR(stars[0].magnitude, 10.475213f, 1e-4f);
  EXPECT_NEAR(stars[0].x, 27.705498f, 1e-3f);
  EXPECT_NEAR(stars[0].y, 28.169697f, 1e-3f);
}

}  // namespace
