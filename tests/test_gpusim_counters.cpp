#include "gpusim/counters.h"

#include <gtest/gtest.h>

#include "starsim/breakdown.h"

namespace {

namespace gs = starsim::gpusim;

gs::KernelCounters sample_counters() {
  gs::KernelCounters c;
  c.blocks_launched = 2;
  c.threads_launched = 64;
  c.warps_launched = 2;
  c.flops = 1000;
  c.global_reads = 10;
  c.global_writes = 5;
  c.global_bytes_read = 40;
  c.global_bytes_written = 20;
  c.global_transactions = 3;
  c.shared_reads = 30;
  c.shared_writes = 6;
  c.shared_bank_conflicts = 2;
  c.atomic_ops = 64;
  c.atomic_conflicts = 1;
  c.texture_fetches = 7;
  c.texture_hits = 6;
  c.texture_misses = 1;
  c.barriers = 2;
  c.branch_sites_evaluated = 4;
  c.divergent_warp_branches = 1;
  return c;
}

TEST(Counters, DefaultIsAllZero) {
  const gs::KernelCounters c;
  EXPECT_EQ(c.flops, 0u);
  EXPECT_EQ(c.global_bytes(), 0u);
  EXPECT_DOUBLE_EQ(c.divergence_rate(), 0.0);
}

TEST(Counters, MergeSumsEveryField) {
  gs::KernelCounters a = sample_counters();
  a.merge(sample_counters());
  const gs::KernelCounters one = sample_counters();
  EXPECT_EQ(a.blocks_launched, 2 * one.blocks_launched);
  EXPECT_EQ(a.threads_launched, 2 * one.threads_launched);
  EXPECT_EQ(a.warps_launched, 2 * one.warps_launched);
  EXPECT_EQ(a.flops, 2 * one.flops);
  EXPECT_EQ(a.global_reads, 2 * one.global_reads);
  EXPECT_EQ(a.global_writes, 2 * one.global_writes);
  EXPECT_EQ(a.global_bytes_read, 2 * one.global_bytes_read);
  EXPECT_EQ(a.global_bytes_written, 2 * one.global_bytes_written);
  EXPECT_EQ(a.global_transactions, 2 * one.global_transactions);
  EXPECT_EQ(a.shared_reads, 2 * one.shared_reads);
  EXPECT_EQ(a.shared_writes, 2 * one.shared_writes);
  EXPECT_EQ(a.shared_bank_conflicts, 2 * one.shared_bank_conflicts);
  EXPECT_EQ(a.atomic_ops, 2 * one.atomic_ops);
  EXPECT_EQ(a.atomic_conflicts, 2 * one.atomic_conflicts);
  EXPECT_EQ(a.texture_fetches, 2 * one.texture_fetches);
  EXPECT_EQ(a.texture_hits, 2 * one.texture_hits);
  EXPECT_EQ(a.texture_misses, 2 * one.texture_misses);
  EXPECT_EQ(a.barriers, 2 * one.barriers);
  EXPECT_EQ(a.branch_sites_evaluated, 2 * one.branch_sites_evaluated);
  EXPECT_EQ(a.divergent_warp_branches, 2 * one.divergent_warp_branches);
}

TEST(Counters, MergeWithEmptyIsIdentity) {
  gs::KernelCounters a = sample_counters();
  a.merge(gs::KernelCounters{});
  const gs::KernelCounters one = sample_counters();
  EXPECT_EQ(a.flops, one.flops);
  EXPECT_EQ(a.barriers, one.barriers);
}

TEST(Counters, GlobalBytesSumsBothDirections) {
  EXPECT_EQ(sample_counters().global_bytes(), 60u);
}

TEST(Counters, DivergenceRateIsFraction) {
  EXPECT_DOUBLE_EQ(sample_counters().divergence_rate(), 0.25);
}

TEST(Counters, ToStringMentionsKeyFields) {
  const std::string text = sample_counters().to_string();
  EXPECT_NE(text.find("blocks=2"), std::string::npos);
  EXPECT_NE(text.find("flops=1000"), std::string::npos);
  EXPECT_NE(text.find("atomics=64"), std::string::npos);
  EXPECT_NE(text.find("conflicts=1"), std::string::npos);
  EXPECT_NE(text.find("txn=3"), std::string::npos);
  EXPECT_NE(text.find("bank_conf=2"), std::string::npos);
  EXPECT_NE(text.find("div=1/4"), std::string::npos);
}

// --- TimingBreakdown arithmetic (starsim/breakdown.h) ---

TEST(TimingBreakdown, ComposesComponents) {
  starsim::TimingBreakdown t;
  t.kernel_s = 2.0;
  t.h2d_s = 0.5;
  t.d2h_s = 0.25;
  t.lut_build_s = 0.125;
  t.texture_bind_s = 0.0625;
  t.host_reduce_s = 0.0625;
  t.host_compute_s = 1.0;
  EXPECT_DOUBLE_EQ(t.non_kernel_s(), 1.0);
  EXPECT_DOUBLE_EQ(t.application_s(), 4.0);
  EXPECT_DOUBLE_EQ(t.non_kernel_fraction(), 0.25);
}

TEST(TimingBreakdown, EmptyBreakdownIsSafe) {
  const starsim::TimingBreakdown t;
  EXPECT_DOUBLE_EQ(t.application_s(), 0.0);
  EXPECT_DOUBLE_EQ(t.non_kernel_fraction(), 0.0);
}

}  // namespace
