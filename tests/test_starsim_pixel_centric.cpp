#include "starsim/pixel_centric_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::ParallelSimulator;
using starsim::PixelCentricSimulator;
using starsim::SceneConfig;
using starsim::SequentialSimulator;
using starsim::SimulationResult;
using starsim::StarField;

SceneConfig scene_of(int edge, int roi) {
  SceneConfig scene;
  scene.image_width = edge;
  scene.image_height = edge;
  scene.roi_side = roi;
  return scene;
}

StarField small_workload(int edge, std::size_t count) {
  starsim::WorkloadConfig workload;
  workload.star_count = count;
  workload.image_width = edge;
  workload.image_height = edge;
  workload.integer_positions = false;
  return generate_stars(workload);
}

TEST(PixelCentric, MatchesSequential) {
  const SceneConfig scene = scene_of(64, 9);
  const StarField stars = small_workload(64, 40);
  SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  const auto a = seq.simulate(scene, stars).image;
  const auto b = pc.simulate(scene, stars).image;
  double peak = 0.0;
  for (float v : a.pixels()) peak = std::max(peak, static_cast<double>(v));
  EXPECT_LT(max_abs_difference(a, b) / peak, 1e-4);
}

TEST(PixelCentric, UsesNoAtomics) {
  const SceneConfig scene = scene_of(64, 9);
  const StarField stars = small_workload(64, 20);
  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  const SimulationResult r = pc.simulate(scene, stars);
  EXPECT_EQ(r.timing.counters.atomic_ops, 0u);
  EXPECT_GT(r.timing.counters.global_writes, 0u);
}

TEST(PixelCentric, OneThreadPerPixel) {
  const SceneConfig scene = scene_of(64, 9);
  const StarField stars = small_workload(64, 5);
  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  const SimulationResult r = pc.simulate(scene, stars);
  EXPECT_EQ(r.timing.counters.threads_launched, 64u * 64u);
}

TEST(PixelCentric, HeavilyDivergentComparedToStarCentric) {
  // Fig. 3's argument, measured: the in-ROI membership branch diverges in
  // nearly every warp, while the star-centric kernel's boundary branch is
  // uniform for interior stars.
  const SceneConfig scene = scene_of(64, 9);
  starsim::WorkloadConfig workload;
  workload.star_count = 30;
  workload.image_width = 64;
  workload.image_height = 64;
  workload.border_margin = 6;  // interior stars
  const StarField stars = generate_stars(workload);

  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  ParallelSimulator par(device);
  const double pixel_rate =
      pc.simulate(scene, stars).timing.counters.divergence_rate();
  const double star_rate =
      par.simulate(scene, stars).timing.counters.divergence_rate();
  EXPECT_GT(pixel_rate, 0.2);
  EXPECT_EQ(star_rate, 0.0);
}

TEST(PixelCentric, RedundantStarLoadsScaleWithPixels) {
  // Every thread reads every star: the global-read count is pixels x stars,
  // the quadratic cost the paper rejects this decomposition for.
  const SceneConfig scene = scene_of(32, 5);
  const StarField stars = small_workload(32, 16);
  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  const SimulationResult r = pc.simulate(scene, stars);
  EXPECT_EQ(r.timing.counters.global_reads, 32u * 32u * 16u);
}

TEST(PixelCentric, EmptyFieldProducesBlackImage) {
  gs::Device device(gs::DeviceSpec::gtx480());
  PixelCentricSimulator pc(device);
  const SimulationResult r = pc.simulate(scene_of(32, 5), StarField{});
  for (float v : r.image.pixels()) ASSERT_EQ(v, 0.0f);
}

}  // namespace
