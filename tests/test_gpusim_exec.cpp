// Execution-semantics tests for the functional GPU engine: thread identity,
// barriers, shared memory, atomics, divergence tracking, counters, and
// error behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/frame_pool.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::support::DeviceError;
using starsim::support::PreconditionError;

gs::ThreadProgram noop_kernel(gs::ThreadCtx&) { co_return; }

// Device is non-copyable; tests construct in place and serialize block
// execution for deterministic counters.
struct SerialDevice : gs::Device {
  SerialDevice() : gs::Device(gs::DeviceSpec::test_small()) {
    set_parallel_blocks(false);
  }
};

TEST(Exec, EveryThreadRunsExactlyOnce) {
  SerialDevice dev;
  auto out = dev.malloc<float>(2 * 3 * 4 * 2);  // grid(2,3) x block(4,2)
  dev.memset_zero(out);

  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const std::uint64_t global =
        ctx.block_linear() * ctx.block_dim().count() +
        ctx.block_dim().linear(ctx.thread_idx());
    ctx.atomic_add(out, global, 1.0f);
    co_return;
  };
  gs::LaunchConfig config{gs::Dim3(2, 3), gs::Dim3(4, 2)};
  const gs::LaunchResult r = dev.launch(config, kernel);

  std::vector<float> host(out.size());
  dev.memcpy_d2h(std::span<float>(host), out);
  for (float v : host) ASSERT_EQ(v, 1.0f);
  EXPECT_EQ(r.counters.threads_launched, 48u);
  EXPECT_EQ(r.counters.blocks_launched, 6u);
  dev.free(out);
}

TEST(Exec, ThreadAndBlockIndicesAreCorrect) {
  SerialDevice dev;
  // Encode identity into a value and verify it lands at the right slot.
  auto out = dev.malloc<float>(4 * 6);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const auto bx = ctx.block_idx().x;
    const auto tx = ctx.thread_idx().x;
    const auto ty = ctx.thread_idx().y;
    const std::uint64_t slot = ctx.block_linear() * 6 + ty * 3 + tx;
    ctx.store(out, slot,
              static_cast<float>(bx * 100 + ty * 10 + tx));
    co_return;
  };
  gs::LaunchConfig config{gs::Dim3(4), gs::Dim3(3, 2)};
  (void)dev.launch(config, kernel);
  std::vector<float> host(out.size());
  dev.memcpy_d2h(std::span<float>(host), out);
  for (unsigned b = 0; b < 4; ++b) {
    for (unsigned ty = 0; ty < 2; ++ty) {
      for (unsigned tx = 0; tx < 3; ++tx) {
        ASSERT_EQ(host[b * 6 + ty * 3 + tx],
                  static_cast<float>(b * 100 + ty * 10 + tx));
      }
    }
  }
  dev.free(out);
}

TEST(Exec, GridAndBlockDimsVisibleInKernel) {
  SerialDevice dev;
  auto out = dev.malloc<float>(4);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.block_linear() == 0 && ctx.thread_linear() == 0) {
      ctx.store(out, 0, static_cast<float>(ctx.grid_dim().x));
      ctx.store(out, 1, static_cast<float>(ctx.grid_dim().y));
      ctx.store(out, 2, static_cast<float>(ctx.block_dim().x));
      ctx.store(out, 3, static_cast<float>(ctx.block_dim().y));
    }
    co_return;
  };
  (void)dev.launch({gs::Dim3(5, 2), gs::Dim3(4, 3)}, kernel);
  std::vector<float> host(4);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 5.0f);
  EXPECT_EQ(host[1], 2.0f);
  EXPECT_EQ(host[2], 4.0f);
  EXPECT_EQ(host[3], 3.0f);
  dev.free(out);
}

TEST(Exec, BarrierOrdersSharedMemoryWrites) {
  SerialDevice dev;
  auto out = dev.malloc<float>(64);
  // Thread 0 writes shared memory; all threads read it after the barrier —
  // the exact Fig. 6 pattern. Without the barrier threads running before
  // thread 0 would read zero.
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    // Run threads in reverse-dependency order: the LAST thread writes.
    if (ctx.thread_linear() == ctx.block_dim().count() - 1) {
      shared.set(0, 42.0f);
    }
    co_await ctx.syncthreads();
    ctx.store(out, ctx.thread_linear(), shared.get(0));
    co_return;
  };
  (void)dev.launch({gs::Dim3(1), gs::Dim3(64)}, kernel);
  std::vector<float> host(64);
  dev.memcpy_d2h(std::span<float>(host), out);
  for (float v : host) ASSERT_EQ(v, 42.0f);
  dev.free(out);
}

TEST(Exec, MultipleBarriersAlternatePhases) {
  SerialDevice dev;
  auto out = dev.malloc<float>(32);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 1.0f);
    co_await ctx.syncthreads();
    const float first = shared.get(0);
    co_await ctx.syncthreads();
    if (ctx.thread_linear() == 31) shared.set(0, first + 1.0f);
    co_await ctx.syncthreads();
    ctx.store(out, ctx.thread_linear(), shared.get(0));
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  std::vector<float> host(32);
  dev.memcpy_d2h(std::span<float>(host), out);
  for (float v : host) ASSERT_EQ(v, 2.0f);
  EXPECT_EQ(r.counters.barriers, 3u);  // 1 warp x 3 barrier epochs
  dev.free(out);
}

TEST(Exec, BarrierDivergenceIsAnError) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.thread_linear() % 2 == 0) {
      co_await ctx.syncthreads();  // odd threads never arrive
    }
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(8)}, kernel),
               DeviceError);
}

TEST(Exec, KernelExceptionPropagates) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.thread_linear() == 3) {
      throw std::runtime_error("bad thread");
    }
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(8)}, kernel),
               std::runtime_error);
}

TEST(Exec, GlobalLoadStoreBoundsChecked) {
  SerialDevice dev;
  auto buffer = dev.malloc<float>(4);
  auto kernel = [&buffer](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(buffer, 100, 1.0f);  // out of bounds
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel),
               PreconditionError);
  dev.free(buffer);
}

TEST(Exec, SharedMemoryIsPerBlock) {
  SerialDevice dev;
  auto out = dev.malloc<float>(8);
  // Each block writes its own id into shared memory; cross-block leakage
  // would mix ids.
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) {
      shared.set(0, static_cast<float>(ctx.block_linear()));
    }
    co_await ctx.syncthreads();
    if (ctx.thread_linear() == 1) {
      ctx.store(out, ctx.block_linear(), shared.get(0));
    }
    co_return;
  };
  (void)dev.launch({gs::Dim3(8), gs::Dim3(2)}, kernel);
  std::vector<float> host(8);
  dev.memcpy_d2h(std::span<float>(host), out);
  for (unsigned b = 0; b < 8; ++b) ASSERT_EQ(host[b], static_cast<float>(b));
  dev.free(out);
}

TEST(Exec, SharedMemoryZeroInitialized) {
  SerialDevice dev;
  auto out = dev.malloc<float>(1);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(4);
    ctx.store(out, 0, shared.get(3));
    co_return;
  };
  (void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  std::vector<float> host(1, -1.0f);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 0.0f);
  dev.free(out);
}

TEST(Exec, SharedMemoryBudgetEnforced) {
  SerialDevice dev;  // 1 KiB shared per block
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.shared_array<float>(512);  // 2 KiB
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel),
               PreconditionError);
}

TEST(Exec, SharedSequenceMismatchDetected) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.thread_linear() == 0) {
      (void)ctx.shared_array<float>(4);
    } else {
      (void)ctx.shared_array<float>(8);  // different size, same slot
    }
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(2)}, kernel),
               PreconditionError);
}

TEST(Exec, AtomicAddAccumulatesAcrossBlocks) {
  SerialDevice dev;
  auto cell = dev.malloc<float>(1);
  dev.memset_zero(cell);
  auto kernel = [&cell](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.atomic_add(cell, 0, 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(16), gs::Dim3(32)}, kernel);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), cell);
  EXPECT_EQ(host[0], 512.0f);
  EXPECT_EQ(r.counters.atomic_ops, 512u);
  // 512 ops on one address: 511 of them conflicted.
  EXPECT_EQ(r.counters.atomic_conflicts, 511u);
  dev.free(cell);
}

TEST(Exec, AtomicConflictsZeroWhenAddressesDisjoint) {
  SerialDevice dev;
  auto cells = dev.malloc<float>(64);
  dev.memset_zero(cells);
  auto kernel = [&cells](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.atomic_add(cells, ctx.thread_linear(), 2.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.atomic_ops, 64u);
  EXPECT_EQ(r.counters.atomic_conflicts, 0u);
  dev.free(cells);
}

TEST(Exec, AtomicConflictCountIsExact) {
  SerialDevice dev;
  auto cells = dev.malloc<float>(4);
  dev.memset_zero(cells);
  // Threads 0..31 hit cell (t % 2): 16 ops per cell -> 15 conflicts each.
  auto kernel = [&cells](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.atomic_add(cells, ctx.thread_linear() % 2, 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.atomic_conflicts, 30u);
  dev.free(cells);
}

TEST(Exec, AtomicReturnsPreviousValue) {
  SerialDevice dev;
  auto cell = dev.malloc<float>(1);
  auto out = dev.malloc<float>(1);
  dev.memset_zero(cell);
  auto kernel = [&cell, &out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const float before = ctx.atomic_add(cell, 0, 5.0f);
    const float after = ctx.atomic_add(cell, 0, 5.0f);
    ctx.store(out, 0, after - before);
    co_return;
  };
  (void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 5.0f);
  dev.free(cell);
  dev.free(out);
}

TEST(Exec, WarpCountsRoundUp) {
  SerialDevice dev;
  const gs::LaunchResult r =
      dev.launch({gs::Dim3(3), gs::Dim3(33)}, noop_kernel);
  EXPECT_EQ(r.counters.warps_launched, 6u);  // ceil(33/32)=2 per block
  EXPECT_EQ(r.counters.threads_launched, 99u);
}

TEST(Exec, UniformBranchIsNotDivergent) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.branch(0, true);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(2), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.branch_sites_evaluated, 2u);
  EXPECT_EQ(r.counters.divergent_warp_branches, 0u);
}

TEST(Exec, MixedBranchWithinWarpIsDivergent) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.branch(0, ctx.thread_linear() % 2 == 0);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.branch_sites_evaluated, 1u);
  EXPECT_EQ(r.counters.divergent_warp_branches, 1u);
  EXPECT_DOUBLE_EQ(r.counters.divergence_rate(), 1.0);
}

TEST(Exec, WarpUniformButGridMixedIsNotDivergent) {
  SerialDevice dev;
  // Warp 0 all-true, warp 1 all-false: no divergence inside either warp.
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.branch(0, ctx.warp_id() == 0);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.branch_sites_evaluated, 2u);
  EXPECT_EQ(r.counters.divergent_warp_branches, 0u);
}

TEST(Exec, BranchSiteOutOfRangeThrows) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.branch(99, true);
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel),
               PreconditionError);
}

TEST(Exec, MeteredTranscendentalsCountFlops) {
  SerialDevice dev;
  const gs::DeviceSpec& spec = dev.spec();
  auto out = dev.malloc<float>(1);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const double v = ctx.exp(0.0) + ctx.pow(2.0, 3.0) + ctx.sqrt(16.0);
    ctx.count_flops(2);
    ctx.store(out, 0, static_cast<float>(v));
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  const auto expected = static_cast<std::uint64_t>(
      spec.exp_flop_equiv + spec.pow_flop_equiv + spec.sqrt_flop_equiv + 2);
  EXPECT_EQ(r.counters.flops, expected);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_FLOAT_EQ(host[0], 1.0f + 8.0f + 4.0f);
  dev.free(out);
}

TEST(Exec, CountersSumMemoryTraffic) {
  SerialDevice dev;
  auto buf = dev.malloc<float>(32);
  dev.memset_zero(buf);
  auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const float v = ctx.load(buf, ctx.thread_linear());
    ctx.store(buf, ctx.thread_linear(), v + 1.0f);
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(32)}, kernel);
  EXPECT_EQ(r.counters.global_reads, 32u);
  EXPECT_EQ(r.counters.global_writes, 32u);
  EXPECT_EQ(r.counters.global_bytes_read, 128u);
  EXPECT_EQ(r.counters.global_bytes_written, 128u);
  dev.free(buf);
}

TEST(Exec, FramePoolRecyclesFrames) {
  starsim::gpusim::detail::frame_pool_drain();
  SerialDevice dev;
  (void)dev.launch({gs::Dim3(4), gs::Dim3(8)}, noop_kernel);
  const std::size_t after_first = starsim::gpusim::detail::frame_pool_size();
  EXPECT_GT(after_first, 0u);  // frames parked for reuse
  (void)dev.launch({gs::Dim3(4), gs::Dim3(8)}, noop_kernel);
  // Second identical launch must not grow the pool (full recycling).
  EXPECT_EQ(starsim::gpusim::detail::frame_pool_size(), after_first);
}

TEST(Exec, FramePoolStatsCountReuse) {
  namespace detail = starsim::gpusim::detail;
  detail::frame_pool_drain();
  detail::frame_pool_stats_reset();
  SerialDevice dev;
  (void)dev.launch({gs::Dim3(4), gs::Dim3(8)}, noop_kernel);
  const auto cold = detail::frame_pool_stats();
  EXPECT_GT(cold.acquired, 0u);
  EXPECT_EQ(cold.acquired, cold.reused + cold.allocated);
  EXPECT_GT(cold.allocated, 0u);  // first launch cannot reuse anything

  (void)dev.launch({gs::Dim3(4), gs::Dim3(8)}, noop_kernel);
  const auto warm = detail::frame_pool_stats();
  EXPECT_EQ(warm.acquired, 2 * cold.acquired);
  // The second identical launch is served entirely from the free list.
  EXPECT_EQ(warm.allocated, cold.allocated);
  EXPECT_EQ(warm.reused, cold.reused + cold.acquired);
  EXPECT_GT(warm.reuse_rate(), 0.0);

  detail::frame_pool_stats_reset();
  EXPECT_EQ(detail::frame_pool_stats().acquired, 0u);
}

TEST(Exec, ParallelAndSerialProduceSameImage) {
  gs::DeviceSpec spec = gs::DeviceSpec::test_small();
  gs::Device serial(spec);
  serial.set_parallel_blocks(false);
  gs::Device parallel(spec);
  parallel.set_parallel_blocks(true);

  auto run = [](gs::Device& dev) {
    auto buf = dev.malloc<float>(64);
    dev.memset_zero(buf);
    auto kernel = [&buf](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
      ctx.atomic_add(buf, ctx.thread_linear() % 64, 1.0f);
      co_return;
    };
    (void)dev.launch({gs::Dim3(16), gs::Dim3(32)}, kernel);
    std::vector<float> host(64);
    dev.memcpy_d2h(std::span<float>(host), buf);
    dev.free(buf);
    return host;
  };
  EXPECT_EQ(run(serial), run(parallel));
}


TEST(Exec, KernelExceptionPropagatesFromParallelBlocks) {
  gs::Device dev(gs::DeviceSpec::test_small());
  dev.set_parallel_blocks(true);
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    if (ctx.block_linear() == 13 && ctx.thread_linear() == 2) {
      throw std::runtime_error("bad block");
    }
    co_return;
  };
  EXPECT_THROW((void)dev.launch({gs::Dim3(32), gs::Dim3(8)}, kernel),
               std::runtime_error);
}

TEST(Exec, ThreeDimensionalBlocksSupported) {
  SerialDevice dev;
  auto out = dev.malloc<float>(2 * 4 * 2);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    const auto& t = ctx.thread_idx();
    ctx.store(out, ctx.thread_linear(),
              static_cast<float>(t.z * 100 + t.y * 10 + t.x));
    co_return;
  };
  (void)dev.launch({gs::Dim3(1), gs::Dim3(2, 4, 2)}, kernel);
  std::vector<float> host(16);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 0.0f);      // (0,0,0)
  EXPECT_EQ(host[1], 1.0f);      // (1,0,0)
  EXPECT_EQ(host[2], 10.0f);     // (0,1,0)
  EXPECT_EQ(host[8], 100.0f);    // (0,0,1)
  EXPECT_EQ(host[15], 131.0f);   // (1,3,1)
  dev.free(out);
}

TEST(Exec, MultipleTexturesUsableInOneKernel) {
  SerialDevice dev;
  auto a = dev.malloc<float>(16);
  auto b = dev.malloc<float>(16);
  std::vector<float> ha(16, 2.0f);
  std::vector<float> hb(16, 5.0f);
  dev.memcpy_h2d(a, std::span<const float>(ha));
  dev.memcpy_h2d(b, std::span<const float>(hb));
  const auto ta = dev.bind_texture_2d(a, 4, 4, gs::AddressMode::kClamp);
  const auto tb = dev.bind_texture_2d(b, 4, 4, gs::AddressMode::kClamp);
  auto out = dev.malloc<float>(1);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.store(out, 0, ctx.tex2d(ta, 1, 1) + ctx.tex2d(tb, 2, 2));
    co_return;
  };
  (void)dev.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  std::vector<float> host(1);
  dev.memcpy_d2h(std::span<float>(host), out);
  EXPECT_EQ(host[0], 7.0f);
  dev.unbind_texture(ta);
  dev.unbind_texture(tb);
  dev.free(a);
  dev.free(b);
  dev.free(out);
}

TEST(Exec, BarrierInsideLoopCountsEveryEpoch) {
  SerialDevice dev;
  auto kernel = [](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    for (int round = 0; round < 5; ++round) {
      if (ctx.thread_linear() == 0) shared.set(0, static_cast<float>(round));
      co_await ctx.syncthreads();
    }
    co_return;
  };
  const gs::LaunchResult r = dev.launch({gs::Dim3(1), gs::Dim3(64)}, kernel);
  EXPECT_EQ(r.counters.barriers, 5u * 2u);  // 5 epochs x 2 warps
}

TEST(Exec, GridZDimensionWorks) {
  SerialDevice dev;
  auto out = dev.malloc<float>(8);
  dev.memset_zero(out);
  auto kernel = [&out](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    ctx.atomic_add(out, ctx.block_linear(), 1.0f);
    co_return;
  };
  const gs::LaunchResult r =
      dev.launch({gs::Dim3(2, 2, 2), gs::Dim3(4)}, kernel);
  EXPECT_EQ(r.counters.blocks_launched, 8u);
  std::vector<float> host(8);
  dev.memcpy_d2h(std::span<float>(host), out);
  for (float v : host) EXPECT_EQ(v, 4.0f);
  dev.free(out);
}

}  // namespace
