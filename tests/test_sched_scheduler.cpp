// Scheduler — the serving facade: cached tune-on-miss under concurrency,
// per-request override accounting, legacy fallback, and warm-start
// persistence across scheduler instances.
#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"

namespace {

namespace sched = starsim::sched;
using starsim::SceneConfig;
using starsim::SimulatorKind;

SceneConfig paper_scene(int roi_side = 10) {
  SceneConfig scene;
  scene.image_width = 1024;
  scene.image_height = 1024;
  scene.roi_side = roi_side;
  return scene;
}

TEST(SchedScheduler, ConcurrentChooseTunesOnce) {
  // Many threads asking about the same workload class must trigger exactly
  // one tune; everyone else hits the cache and agrees on the answer.
  sched::Scheduler scheduler;
  const SceneConfig scene = paper_scene();
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 32;
  std::vector<SimulatorKind> answers(kThreads, SimulatorKind::kMultiGpu);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SimulatorKind kind = SimulatorKind::kMultiGpu;
      for (int i = 0; i < kCallsPerThread; ++i) {
        kind = scheduler.choose(scene, 8192);
      }
      answers[static_cast<std::size_t>(t)] = kind;
    });
  }
  for (std::thread& t : threads) t.join();

  const sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tuner_invocations, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits,
            static_cast<std::uint64_t>(kThreads * kCallsPerThread - 1));
  EXPECT_EQ(stats.fallbacks, 0u);
  for (SimulatorKind kind : answers) EXPECT_EQ(kind, answers.front());
}

TEST(SchedScheduler, DistinctWorkloadClassesTuneSeparately) {
  // Star counts land in floor(log2) buckets: three different powers of two
  // are three cache entries, but counts within one bucket share a tune.
  sched::Scheduler scheduler;
  const SceneConfig scene = paper_scene();
  (void)scheduler.choose(scene, 1024);
  (void)scheduler.choose(scene, 1025);  // same bucket as 1024
  (void)scheduler.choose(scene, 2048);
  (void)scheduler.choose(scene, 4096);
  const sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tuner_invocations, 3u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(SchedScheduler, EmptyFieldIsSequentialWithoutTuning) {
  sched::Scheduler scheduler;
  EXPECT_EQ(scheduler.choose(paper_scene(), 0), SimulatorKind::kSequential);
  EXPECT_EQ(scheduler.stats().tuner_invocations, 0u);
}

TEST(SchedScheduler, OverrideWinsAndRecordsDrift) {
  // A pinned simulator is always honored, but the tuned decision is still
  // computed so the modeled cost of the pin is visible. Pinning sequential
  // at 2^15 stars (deep in GPU territory) must record positive drift.
  sched::Scheduler scheduler;
  const SceneConfig scene = paper_scene();
  EXPECT_EQ(scheduler.choose(scene, 1u << 15, SimulatorKind::kSequential),
            SimulatorKind::kSequential);
  sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.overrides_recorded, 1u);
  EXPECT_EQ(stats.tuner_invocations, 1u);  // tuned decision still cached
  EXPECT_GT(stats.override_drift_s_total, 0.0);

  // Pinning what the tuner would have picked anyway adds ~zero drift.
  const double drift_before = stats.override_drift_s_total;
  const SimulatorKind tuned =
      scheduler.schedule_for(scene, 1u << 15).schedule.simulator;
  EXPECT_EQ(scheduler.choose(scene, 1u << 15, tuned), tuned);
  stats = scheduler.stats();
  EXPECT_EQ(stats.overrides_recorded, 2u);
  EXPECT_NEAR(stats.override_drift_s_total, drift_before, 1e-12);
}

TEST(SchedScheduler, MultiGpuPinSkipsDriftButCounts) {
  // kMultiGpu cannot be scored by the cost model; the pin still wins and is
  // still counted, with no drift contribution and no fallback tick.
  sched::Scheduler scheduler;
  EXPECT_EQ(scheduler.choose(paper_scene(), 4096, SimulatorKind::kMultiGpu),
            SimulatorKind::kMultiGpu);
  const sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.overrides_recorded, 1u);
  EXPECT_EQ(stats.override_drift_s_total, 0.0);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(SchedScheduler, PinnedChooseFallsBackOnInvalidScene) {
  // choose() never throws: an unschedulable workload under a pin keeps the
  // pin and ticks the fallback counter instead of failing the request.
  sched::Scheduler scheduler;
  SceneConfig invalid = paper_scene();
  invalid.roi_side = 0;
  EXPECT_EQ(scheduler.choose(invalid, 64, SimulatorKind::kParallel),
            SimulatorKind::kParallel);
  const sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.overrides_recorded, 1u);
}

TEST(SchedScheduler, ScheduleForValidates) {
  sched::Scheduler scheduler;
  EXPECT_THROW((void)scheduler.schedule_for(paper_scene(), 0),
               starsim::support::Error);
  SceneConfig invalid = paper_scene();
  invalid.image_width = 0;
  EXPECT_THROW((void)scheduler.schedule_for(invalid, 64),
               starsim::support::Error);
}

TEST(SchedScheduler, BatchHintIsPartOfTheWorkloadClass) {
  // The batch hint changes what the tuner amortizes, so it must key the
  // cache: the same scene at batch 1 and batch 8 are two entries.
  sched::Scheduler scheduler;
  const SceneConfig scene = paper_scene();
  (void)scheduler.schedule_for(scene, 1u << 14, 1);
  (void)scheduler.schedule_for(scene, 1u << 14, 8);
  EXPECT_EQ(scheduler.stats().tuner_invocations, 2u);
}

TEST(SchedScheduler, WarmStartCacheSurvivesRestart) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "starsim_test_sched_scheduler_warm.txt")
          .string();
  std::remove(path.c_str());

  sched::SchedulerOptions options;
  options.cache_capacity = 32;
  {
    sched::Scheduler cold(options);
    for (std::size_t n : {256u, 4096u, 65536u}) {
      (void)cold.schedule_for(paper_scene(), n);
    }
    ASSERT_TRUE(cold.save_cache(path));
  }

  sched::Scheduler warm(options);
  ASSERT_TRUE(warm.load_cache(path));
  for (std::size_t n : {256u, 4096u, 65536u}) {
    (void)warm.schedule_for(paper_scene(), n);
  }
  const sched::SchedulerStats stats = warm.stats();
  EXPECT_EQ(stats.tuner_invocations, 0u);
  EXPECT_EQ(stats.cache.hits, 3u);
  EXPECT_EQ(stats.cache.misses, 0u);

  // A scheduler for different hardware must reject the same file.
  sched::SchedulerOptions other = options;
  other.device = starsim::gpusim::DeviceSpec::gtx580();
  sched::Scheduler mismatched(other);
  EXPECT_FALSE(mismatched.load_cache(path));
  std::remove(path.c_str());
}

TEST(SchedScheduler, ConcurrentMixedWorkloadsStayConsistent) {
  // Threads hammer overlapping workload classes with and without pins; the
  // invariant bundle: hits + misses == unpinned lookups + pinned lookups,
  // every miss is a tune, and no fallback fires on valid scenes.
  sched::Scheduler scheduler;
  constexpr int kThreads = 8;
  constexpr int kIterations = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t stars = std::size_t{64} << ((t + i) % 4);
        if (i % 3 == 0) {
          (void)scheduler.choose(paper_scene(), stars,
                                 SimulatorKind::kParallel);
        } else {
          (void)scheduler.choose(paper_scene(), stars);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const sched::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cache.hits + stats.cache.misses,
            static_cast<std::uint64_t>(kThreads * kIterations));
  EXPECT_EQ(stats.tuner_invocations, stats.cache.misses);
  EXPECT_EQ(stats.tuner_invocations, 4u);  // four distinct star buckets
  EXPECT_EQ(stats.fallbacks, 0u);
}

}  // namespace
