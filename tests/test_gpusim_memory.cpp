#include "gpusim/device_memory.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

using starsim::gpusim::DeviceMemoryManager;
using starsim::gpusim::DevicePtr;
using starsim::support::DeviceError;
using starsim::support::PreconditionError;

TEST(DeviceMemory, AllocateTracksUsage) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<float>(256);
  EXPECT_EQ(mm.used_bytes(), 1024u);
  EXPECT_EQ(mm.live_allocations(), 1u);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a.bytes(), 1024u);
  EXPECT_TRUE(a.is_live());
}

TEST(DeviceMemory, ReleaseReturnsBytes) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<double>(100);
  mm.release(a);
  EXPECT_EQ(mm.used_bytes(), 0u);
  EXPECT_EQ(mm.live_allocations(), 0u);
  EXPECT_TRUE(a.is_null());  // handle cleared on release
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  DeviceMemoryManager mm(1024);
  EXPECT_THROW((void)mm.allocate<float>(1024), DeviceError);  // 4 KiB > 1 KiB
}

TEST(DeviceMemory, OutOfMemoryMessageCarriesLocationAndSizes) {
  DeviceMemoryManager mm(1024);
  try {
    (void)mm.allocate<float>(1024);
    FAIL() << "expected DeviceError";
  } catch (const DeviceError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("device_memory.cpp:"), std::string::npos)
        << "OOM message should point at the throw site: " << what;
    EXPECT_NE(what.find("requested 4096 bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("1024 of 1024 free"), std::string::npos) << what;
    EXPECT_FALSE(error.retryable()) << "a real capacity OOM is persistent";
  }
}

TEST(DeviceMemory, DoubleFreeMessageCarriesLocationAndId) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<int>(10);
  auto copy = a;
  mm.release(a);
  try {
    mm.release(copy);
    FAIL() << "expected DeviceError";
  } catch (const DeviceError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("device_memory.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("double free"), std::string::npos) << what;
  }
}

TEST(DeviceMemory, UseAfterFreeMessageNamesTheContract) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<float>(16);
  auto copy = a;
  mm.release(a);
  try {
    (void)copy.raw();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("null or freed"),
              std::string::npos)
        << error.what();
  }
}

TEST(DeviceMemory, ExactCapacityFits) {
  DeviceMemoryManager mm(1024);
  auto a = mm.allocate<float>(256);
  EXPECT_EQ(mm.free_bytes(), 0u);
  EXPECT_THROW((void)mm.allocate<float>(1), DeviceError);
  mm.release(a);
  EXPECT_NO_THROW((void)mm.allocate<float>(256));
}

TEST(DeviceMemory, FreeingMakesRoom) {
  DeviceMemoryManager mm(1024);
  auto a = mm.allocate<float>(128);
  auto b = mm.allocate<float>(128);
  mm.release(a);
  EXPECT_NO_THROW((void)mm.allocate<float>(128));
  mm.release(b);
}

TEST(DeviceMemory, DoubleFreeThrows) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<int>(10);
  auto copy = a;
  mm.release(a);
  EXPECT_THROW(mm.release(copy), DeviceError);
}

TEST(DeviceMemory, UseAfterFreeDetected) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<float>(16);
  auto copy = a;
  EXPECT_NO_THROW((void)copy.raw());
  mm.release(a);
  EXPECT_FALSE(copy.is_live());
  EXPECT_THROW((void)copy.raw(), PreconditionError);
}

TEST(DeviceMemory, NullPtrIsNotLive) {
  DevicePtr<float> null_ptr;
  EXPECT_TRUE(null_ptr.is_null());
  EXPECT_FALSE(null_ptr.is_live());
  EXPECT_THROW((void)null_ptr.raw(), PreconditionError);
}

TEST(DeviceMemory, ZeroCountAllocationRejected) {
  DeviceMemoryManager mm(1 << 20);
  EXPECT_THROW((void)mm.allocate<float>(0), PreconditionError);
}

TEST(DeviceMemory, AllocationsAreDistinct) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<float>(4);
  auto b = mm.allocate<float>(4);
  EXPECT_NE(a.raw(), b.raw());
  EXPECT_NE(a.allocation_id(), b.allocation_id());
  a.raw()[0] = 1.0f;
  b.raw()[0] = 2.0f;
  EXPECT_EQ(a.raw()[0], 1.0f);
  mm.release(a);
  mm.release(b);
}

TEST(DeviceMemory, IsLiveQueriesById) {
  DeviceMemoryManager mm(1 << 20);
  auto a = mm.allocate<float>(4);
  const auto id = a.allocation_id();
  EXPECT_TRUE(mm.is_live(id));
  mm.release(a);
  EXPECT_FALSE(mm.is_live(id));
  EXPECT_FALSE(mm.is_live(9999));
}

TEST(DeviceMemory, ManySmallAllocationsStayStable) {
  DeviceMemoryManager mm(1 << 20);
  std::vector<DevicePtr<int>> ptrs;
  for (int i = 0; i < 200; ++i) {
    ptrs.push_back(mm.allocate<int>(8));
    ptrs.back().raw()[0] = i;
  }
  // Growth of the internal slot store must not invalidate older handles.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ptrs[static_cast<std::size_t>(i)].is_live());
    ASSERT_EQ(ptrs[static_cast<std::size_t>(i)].raw()[0], i);
  }
  for (auto& p : ptrs) mm.release(p);
  EXPECT_EQ(mm.used_bytes(), 0u);
}

}  // namespace
