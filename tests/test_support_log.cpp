#include "support/log.h"

#include <gtest/gtest.h>

namespace {

namespace sup = starsim::support;

TEST(Log, ParseKnownLevels) {
  EXPECT_EQ(sup::parse_log_level("trace"), sup::LogLevel::kTrace);
  EXPECT_EQ(sup::parse_log_level("debug"), sup::LogLevel::kDebug);
  EXPECT_EQ(sup::parse_log_level("info"), sup::LogLevel::kInfo);
  EXPECT_EQ(sup::parse_log_level("warn"), sup::LogLevel::kWarn);
  EXPECT_EQ(sup::parse_log_level("error"), sup::LogLevel::kError);
  EXPECT_EQ(sup::parse_log_level("off"), sup::LogLevel::kOff);
}

TEST(Log, UnknownLevelFallsBackToInfo) {
  EXPECT_EQ(sup::parse_log_level("bogus"), sup::LogLevel::kInfo);
  EXPECT_EQ(sup::parse_log_level(""), sup::LogLevel::kInfo);
}

TEST(Log, SetAndGetRoundTrips) {
  const sup::LogLevel before = sup::log_level();
  sup::set_log_level(sup::LogLevel::kError);
  EXPECT_EQ(sup::log_level(), sup::LogLevel::kError);
  sup::set_log_level(sup::LogLevel::kDebug);
  EXPECT_EQ(sup::log_level(), sup::LogLevel::kDebug);
  sup::set_log_level(before);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  const sup::LogLevel before = sup::log_level();
  sup::set_log_level(sup::LogLevel::kOff);
  // Nothing observable to assert beyond "does not crash / does not throw".
  EXPECT_NO_THROW(sup::log_message(sup::LogLevel::kError, "hidden"));
  EXPECT_NO_THROW(STARSIM_INFO << "also hidden " << 42);
  sup::set_log_level(before);
}

TEST(Log, StreamLoggerFormatsMixedTypes) {
  const sup::LogLevel before = sup::log_level();
  sup::set_log_level(sup::LogLevel::kOff);  // keep test output clean
  EXPECT_NO_THROW(STARSIM_WARN << "x=" << 1.5 << " n=" << 7 << " s=" << "ok");
  sup::set_log_level(before);
}

TEST(Log, LevelOrderingIsMonotonic) {
  EXPECT_LT(sup::LogLevel::kTrace, sup::LogLevel::kDebug);
  EXPECT_LT(sup::LogLevel::kDebug, sup::LogLevel::kInfo);
  EXPECT_LT(sup::LogLevel::kInfo, sup::LogLevel::kWarn);
  EXPECT_LT(sup::LogLevel::kWarn, sup::LogLevel::kError);
  EXPECT_LT(sup::LogLevel::kError, sup::LogLevel::kOff);
}

}  // namespace
