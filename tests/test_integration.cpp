// End-to-end pipelines: catalogue -> attitude -> projection -> simulation ->
// output, and cross-simulator agreement on a realistic scene.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "gpusim/device.h"
#include "imageio/bmp.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/catalog.h"
#include "starsim/multi_gpu_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/projection.h"
#include "starsim/render.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::CameraModel;
using starsim::Quaternion;
using starsim::SceneConfig;
using starsim::StarField;

TEST(Integration, StarTrackerFrameEndToEnd) {
  // The paper's full pipeline with the attitude-driven front end: a
  // synthetic catalogue viewed by a pinhole camera renders to a frame with
  // flux everywhere a projected star landed.
  const starsim::Catalog catalog = starsim::Catalog::synthesize(50000, 17);
  CameraModel camera;
  camera.width = 256;
  camera.height = 256;
  camera.focal_length_px = 500.0;
  camera.magnitude_limit = 7.0;
  const Quaternion attitude = Quaternion::from_euler(0.3, -0.2, 0.1);
  const StarField stars = project_to_image(catalog.stars(), attitude, camera);
  ASSERT_GT(stars.size(), 10u);

  SceneConfig scene;
  scene.image_width = 256;
  scene.image_height = 256;
  scene.roi_side = 10;

  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator sim(device);
  const auto result = sim.simulate(scene, stars);

  // Flux appears at every projected star's pixel (stars whose center
  // rounds onto the frame; projection culls at the frame edge, so a star
  // at x = 255.7 legitimately rounds off it).
  int bright_stars = 0;
  int on_frame = 0;
  for (const auto& star : stars) {
    const int x = static_cast<int>(std::lround(star.x));
    const int y = static_cast<int>(std::lround(star.y));
    if (!result.image.contains(x, y)) continue;
    ++on_frame;
    if (result.image(x, y) > 0.0f) ++bright_stars;
  }
  EXPECT_EQ(bright_stars, on_frame);
  EXPECT_GT(on_frame, static_cast<int>(stars.size() * 9 / 10));

  // Output stage: render and reload.
  const std::string prefix = ::testing::TempDir() + "/tracker_frame";
  starsim::save_star_image(result.image, prefix);
  const auto reloaded = starsim::imageio::read_bmp_gray(prefix + ".bmp");
  EXPECT_EQ(reloaded.width(), 256);
  std::remove((prefix + ".bmp").c_str());
  std::remove((prefix + ".pgm").c_str());
}

TEST(Integration, AttitudeSlewShiftsTheFrame) {
  const starsim::Catalog catalog = starsim::Catalog::synthesize(50000, 18);
  CameraModel camera;
  camera.width = 128;
  camera.height = 128;
  camera.focal_length_px = 300.0;
  const StarField before =
      project_to_image(catalog.stars(), Quaternion::identity(), camera);
  const Quaternion slew = Quaternion::from_axis_angle({0, 1, 0}, 0.01);
  const StarField after = project_to_image(catalog.stars(), slew, camera);
  ASSERT_GT(before.size(), 5u);
  ASSERT_GT(after.size(), 5u);
  // The fields differ but have similar populations (same sky density).
  EXPECT_NE(before.size(), 0u);
  const double ratio =
      static_cast<double>(after.size()) / static_cast<double>(before.size());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Integration, AllSimulatorsAgreeOnOneScene) {
  SceneConfig scene;
  scene.image_width = 128;
  scene.image_height = 128;
  scene.roi_side = 8;

  // Bin-centered magnitudes and integer positions so even the adaptive
  // simulator is exact.
  StarField stars;
  for (int i = 0; i < 60; ++i) {
    starsim::Star star;
    star.magnitude = static_cast<float>((i % 15) + 0.5);
    star.x = static_cast<float>(10 + (i * 7) % 110);
    star.y = static_cast<float>(10 + (i * 13) % 110);
    stars.push_back(star);
  }

  starsim::SequentialSimulator seq;
  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator par(device);
  starsim::AdaptiveSimulator ada(device);
  starsim::MultiGpuSimulator multi(3);

  const auto ref = seq.simulate(scene, stars).image;
  double peak = 0.0;
  for (float v : ref.pixels()) peak = std::max(peak, static_cast<double>(v));

  const auto par_result = par.simulate(scene, stars);
  const auto ada_result = ada.simulate(scene, stars);
  const auto multi_result = multi.simulate(scene, stars);
  EXPECT_LT(max_abs_difference(ref, par_result.image) / peak, 1e-4);
  EXPECT_LT(max_abs_difference(ref, ada_result.image) / peak, 1e-4);
  EXPECT_LT(max_abs_difference(ref, multi_result.image) / peak, 1e-4);
}

TEST(Integration, SelectorAgreesWithMeasuredModeledTimes) {
  // The advisor's predicted application times must match what the
  // simulators actually report, for interior stars (same models on both
  // sides: this is a consistency check, not a tautology — the predictor
  // reconstructs the counters analytically).
  SceneConfig scene;
  scene.image_width = 1024;
  scene.image_height = 1024;
  scene.roi_side = 10;
  starsim::WorkloadConfig workload;
  workload.star_count = 512;
  workload.border_margin = 8;
  const StarField stars = generate_stars(workload);

  gs::Device device(gs::DeviceSpec::gtx480());
  starsim::ParallelSimulator par(device);
  const auto measured = par.simulate(scene, stars);

  const starsim::SimulatorSelector selector;
  const auto predicted = selector.predict(scene, stars.size());
  EXPECT_NEAR(predicted.parallel.kernel_s, measured.timing.kernel_s,
              measured.timing.kernel_s * 0.01);
  EXPECT_NEAR(predicted.parallel.application_s(),
              measured.timing.application_s(),
              measured.timing.application_s() * 0.01);
}

TEST(Integration, NoisyRenderOfSimulatedFrame) {
  SceneConfig scene;
  scene.image_width = 128;
  scene.image_height = 128;
  scene.roi_side = 10;
  starsim::WorkloadConfig workload;
  workload.star_count = 100;
  workload.image_width = 128;
  workload.image_height = 128;
  const StarField stars = generate_stars(workload);

  starsim::SequentialSimulator seq;
  const auto result = seq.simulate(scene, stars);

  starsim::RenderOptions options;
  options.apply_noise = true;
  options.noise.read_noise_electrons = 1.0;
  options.noise.gain_electrons_per_flux = 10.0;
  const auto frame = starsim::render_display_image(result.image, options);
  int lit = 0;
  for (auto v : frame.pixels()) {
    if (v > 0) ++lit;
  }
  EXPECT_GT(lit, 100);  // stars plus noise floor
}

}  // namespace
