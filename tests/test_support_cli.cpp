#include "support/cli.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace {

namespace sup = starsim::support;
using sup::PreconditionError;

sup::Cli make_cli() {
  sup::Cli cli("prog", "test program");
  cli.add_flag("verbose", "talk more");
  cli.add_option("count", "how many", "10");
  cli.add_option("scale", "a real", "1.5");
  cli.add_option("name", "a string", "default");
  return cli;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.integer("count"), 10);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 1.5);
  EXPECT_EQ(cli.str("name"), "default");
}

TEST(Cli, ParsesSeparatedValues) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--count", "42", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.integer("count"), 42);
}

TEST(Cli, ParsesEqualsForm) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--scale=2.25", "--name=abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.real("scale"), 2.25);
  EXPECT_EQ(cli.str("name"), "abc");
}

TEST(Cli, ParsesHexIntegers) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--count", "0x20"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.integer("count"), 32);
}

TEST(Cli, CollectsPositionals) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "one", "--count", "5", "two"};
  ASSERT_TRUE(cli.parse(5, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, RejectsUnknownOption) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW((void)cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsMissingValue) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW((void)cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsValueOnFlag) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_THROW((void)cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsNonNumericValue) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--count", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.integer("count"), PreconditionError);
}

TEST(Cli, RejectsTrailingJunk) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--scale", "1.5x"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.real("scale"), PreconditionError);
}

TEST(Cli, HelpReturnsFalse) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpTextMentionsOptions) {
  sup::Cli cli = make_cli();
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
}

TEST(Cli, RejectsDuplicateDeclaration) {
  sup::Cli cli("p", "s");
  cli.add_flag("x", "flag");
  EXPECT_THROW(cli.add_option("x", "again", "1"), PreconditionError);
}

TEST(Cli, QueryingWrongKindThrows) {
  sup::Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.flag("count"), PreconditionError);
  EXPECT_THROW((void)cli.str("verbose"), PreconditionError);
}

}  // namespace
