#include "gpusim/texture.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "support/error.h"

namespace {

namespace gs = starsim::gpusim;
using starsim::support::PreconditionError;

class TextureFixture : public ::testing::Test {
 protected:
  TextureFixture() : dev_(gs::DeviceSpec::test_small()) {
    dev_.set_parallel_blocks(false);
    data_ = dev_.malloc<float>(64);
    std::vector<float> host(64);
    for (int i = 0; i < 64; ++i) host[static_cast<std::size_t>(i)] = static_cast<float>(i);
    dev_.memcpy_h2d(data_, std::span<const float>(host));
  }
  ~TextureFixture() override { dev_.free(data_); }

  /// Run a one-thread kernel that fetches (x, y) and return the value.
  float fetch(gs::TextureHandle tex, int x, int y) {
    auto out = dev_.malloc<float>(1);
    auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
      ctx.store(out, 0, ctx.tex2d(tex, x, y));
      co_return;
    };
    (void)dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
    std::vector<float> host(1);
    dev_.memcpy_d2h(std::span<float>(host), out);
    dev_.free(out);
    return host[0];
  }

  gs::Device dev_;
  gs::DevicePtr<float> data_;
};

TEST_F(TextureFixture, FetchReturnsRowMajorTexel) {
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  EXPECT_EQ(fetch(tex, 0, 0), 0.0f);
  EXPECT_EQ(fetch(tex, 3, 0), 3.0f);
  EXPECT_EQ(fetch(tex, 0, 2), 16.0f);
  EXPECT_EQ(fetch(tex, 7, 7), 63.0f);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, ClampModeClampsCoordinates) {
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  EXPECT_EQ(fetch(tex, -5, 0), 0.0f);
  EXPECT_EQ(fetch(tex, 100, 0), 7.0f);
  EXPECT_EQ(fetch(tex, 0, 100), 56.0f);
  EXPECT_EQ(fetch(tex, -1, -1), 0.0f);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, BorderModeReturnsBorderValue) {
  const auto tex =
      dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kBorder, -9.0f);
  EXPECT_EQ(fetch(tex, -1, 0), -9.0f);
  EXPECT_EQ(fetch(tex, 8, 0), -9.0f);
  EXPECT_EQ(fetch(tex, 3, 3), 27.0f);  // in-range unaffected
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, RepeatFetchHitsCache) {
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    for (int i = 0; i < 10; ++i) (void)ctx.tex2d(tex, 2, 2);
    co_return;
  };
  const gs::LaunchResult r = dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_EQ(r.counters.texture_fetches, 10u);
  EXPECT_EQ(r.counters.texture_misses, 1u);
  EXPECT_EQ(r.counters.texture_hits, 9u);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, NeighborhoodSharesLinesViaMorton) {
  // A 4x4 neighborhood spans 64 bytes = 2 cache lines in Morton layout;
  // a row-major layout of an 8-wide texture would also be compact here, so
  // probe a vertical walk instead: Morton keeps vertical neighbors in the
  // same line pairs-wise, so 8 vertical fetches cost at most 4 misses + the
  // rest hits (row-major in global memory would be 8 distinct 32B lines for
  // a wide texture; see test_gpusim_morton for the locality property).
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    for (int y = 0; y < 8; ++y) (void)ctx.tex2d(tex, 0, y);
    co_return;
  };
  const gs::LaunchResult r = dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_LE(r.counters.texture_misses, 4u);
  EXPECT_GE(r.counters.texture_hits, 4u);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, BorderFetchCountsAsHitWithoutCacheTransaction) {
  const auto tex =
      dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kBorder, 0.0f);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.tex2d(tex, -1, -1);
    co_return;
  };
  const gs::LaunchResult r = dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  EXPECT_EQ(r.counters.texture_fetches, 1u);
  EXPECT_EQ(r.counters.texture_misses, 0u);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, CachesResetBetweenLaunches) {
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.tex2d(tex, 1, 1);
    co_return;
  };
  (void)dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  const gs::LaunchResult r2 = dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel);
  // Second launch starts cold: the fetch misses again.
  EXPECT_EQ(r2.counters.texture_misses, 1u);
  dev_.unbind_texture(tex);
}

TEST_F(TextureFixture, FetchThroughUnboundHandleThrows) {
  const auto tex = dev_.bind_texture_2d(data_, 8, 8, gs::AddressMode::kClamp);
  dev_.unbind_texture(tex);
  auto kernel = [&](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    (void)ctx.tex2d(tex, 0, 0);
    co_return;
  };
  EXPECT_THROW((void)dev_.launch({gs::Dim3(1), gs::Dim3(1)}, kernel),
               PreconditionError);
}

TEST(Texture, ConstructionValidatesGeometry) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto data = dev.malloc<float>(64);
  EXPECT_THROW(gs::Texture2D(data, 0, 8, gs::AddressMode::kClamp),
               PreconditionError);
  EXPECT_THROW(gs::Texture2D(data, 9, 8, gs::AddressMode::kClamp),
               PreconditionError);  // 72 > 64 floats
  EXPECT_NO_THROW(gs::Texture2D(data, 8, 8, gs::AddressMode::kClamp));
  dev.free(data);
}

TEST(Texture, DistinctTexturesDoNotAliasInCacheAddressSpace) {
  gs::Device dev(gs::DeviceSpec::test_small());
  auto a = dev.malloc<float>(16);
  auto b = dev.malloc<float>(16);
  gs::Texture2D ta(a, 4, 4, gs::AddressMode::kClamp);
  gs::Texture2D tb(b, 4, 4, gs::AddressMode::kClamp);
  EXPECT_NE(ta.cache_address(0, 0), tb.cache_address(0, 0));
  dev.free(a);
  dev.free(b);
}

}  // namespace
