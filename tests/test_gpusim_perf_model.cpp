#include "gpusim/perf_model.h"

#include <gtest/gtest.h>

namespace {

namespace gs = starsim::gpusim;

gs::LaunchConfig big_config() {
  gs::LaunchConfig c;
  c.grid = gs::Dim3(256, 32);  // 8192 blocks
  c.block = gs::Dim3(10, 10);
  return c;
}

gs::KernelCounters base_counters() {
  gs::KernelCounters c;
  c.blocks_launched = 8192;
  c.threads_launched = 819200;
  c.warps_launched = 8192 * 4;
  return c;
}

TEST(PerfModel, EmptyKernelCostsLaunchOverhead) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const gs::KernelTiming t =
      gs::estimate_kernel_time(spec, big_config(), gs::KernelCounters{});
  EXPECT_DOUBLE_EQ(t.launch_s, spec.kernel_launch_overhead_s);
  EXPECT_NEAR(t.kernel_s, spec.kernel_launch_overhead_s, 1e-12);
}

TEST(PerfModel, ComputeTimeMatchesEffectiveThroughputAtSaturation) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::KernelCounters c = base_counters();
  c.flops = 1'000'000'000;  // 1 Gflop
  const gs::KernelTiming t = gs::estimate_kernel_time(spec, big_config(), c);
  EXPECT_DOUBLE_EQ(t.utilization, 1.0);
  EXPECT_NEAR(t.compute_s, 1e9 / spec.effective_fp64_flops(), 1e-12);
}

TEST(PerfModel, LowOccupancyInflatesComputeTime) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::KernelCounters c;
  c.flops = 1'000'000;
  gs::LaunchConfig small;
  small.grid = gs::Dim3(4);
  small.block = gs::Dim3(10, 10);
  const gs::KernelTiming t_small = gs::estimate_kernel_time(spec, small, c);
  const gs::KernelTiming t_big =
      gs::estimate_kernel_time(spec, big_config(), c);
  EXPECT_GT(t_small.compute_s, t_big.compute_s);
  EXPECT_LT(t_small.utilization, t_big.utilization);
}

TEST(PerfModel, MonotoneInEveryCounter) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const gs::LaunchConfig config = big_config();
  gs::KernelCounters base = base_counters();
  base.flops = 1'000'000;
  base.global_reads = 10'000;
  base.global_bytes_read = 40'000;
  base.shared_reads = 10'000;
  base.texture_hits = 10'000;
  base.texture_misses = 100;
  base.texture_fetches = 10'100;
  base.atomic_ops = 10'000;
  base.atomic_conflicts = 50;
  base.barriers = 1'000;
  base.divergent_warp_branches = 100;
  const double t0 = gs::estimate_kernel_time(spec, config, base).kernel_s;

  auto bump = [&](auto mutate) {
    gs::KernelCounters c = base;
    mutate(c);
    return gs::estimate_kernel_time(spec, config, c).kernel_s;
  };
  EXPECT_GT(bump([](auto& c) { c.flops *= 10; }), t0);
  EXPECT_GT(bump([](auto& c) { c.global_reads *= 100; }), t0);
  EXPECT_GT(bump([](auto& c) { c.global_bytes_read *= 1000; }), t0);
  EXPECT_GT(bump([](auto& c) { c.shared_reads *= 1000; }), t0);
  EXPECT_GT(bump([](auto& c) { c.texture_hits *= 100; }), t0);
  EXPECT_GT(bump([](auto& c) { c.texture_misses *= 100; }), t0);
  EXPECT_GT(bump([](auto& c) { c.atomic_ops *= 100; }), t0);
  EXPECT_GT(bump([](auto& c) { c.atomic_conflicts *= 1000; }), t0);
  EXPECT_GT(bump([](auto& c) { c.barriers *= 1000; }), t0);
  EXPECT_GT(bump([](auto& c) { c.divergent_warp_branches *= 1000; }), t0);
}

TEST(PerfModel, GlobalMemoryTakesMaxOfBandwidthAndLatency) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  // Huge bytes, few accesses: bandwidth-bound.
  gs::KernelCounters bw = base_counters();
  bw.global_reads = 10;
  bw.global_bytes_read = 1ull << 30;
  const double expect_bw =
      static_cast<double>(1ull << 30) / (spec.global_bandwidth_gbps * 1e9);
  EXPECT_NEAR(gs::estimate_kernel_time(spec, big_config(), bw).global_s,
              expect_bw, expect_bw * 1e-9);
  // Many accesses, few bytes: latency-bound (exceeds the bandwidth term).
  gs::KernelCounters lat = base_counters();
  lat.global_reads = 100'000'000;
  lat.global_bytes_read = 100;
  const gs::KernelTiming t = gs::estimate_kernel_time(spec, big_config(), lat);
  EXPECT_GT(t.global_s, expect_bw * 0.001);
  EXPECT_GT(t.global_s, 0.0);
}

TEST(PerfModel, AchievedGflopsConsistent) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::KernelCounters c = base_counters();
  c.flops = 500'000'000;
  const gs::KernelTiming t = gs::estimate_kernel_time(spec, big_config(), c);
  EXPECT_NEAR(t.achieved_gflops, 0.5 / t.kernel_s, 1e-9);
  // Achieved must be below the effective peak.
  EXPECT_LT(t.achieved_gflops, spec.effective_fp64_flops() / 1e9);
}

TEST(PerfModel, TotalIsSumOfComponents) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  gs::KernelCounters c = base_counters();
  c.flops = 123'456'789;
  c.global_reads = 55'555;
  c.global_bytes_read = 222'220;
  c.shared_reads = 44'444;
  c.texture_hits = 33'333;
  c.texture_misses = 2'222;
  c.atomic_ops = 11'111;
  c.atomic_conflicts = 99;
  c.barriers = 1'234;
  c.divergent_warp_branches = 56;
  const gs::KernelTiming t = gs::estimate_kernel_time(spec, big_config(), c);
  EXPECT_NEAR(t.kernel_s,
              t.launch_s + t.compute_s + t.global_s + t.shared_s +
                  t.texture_s + t.atomic_s + t.barrier_s + t.divergence_s,
              1e-15);
}

TEST(PerfModel, TransferTimeLinearInBytes) {
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const double t1 = gs::estimate_transfer_time(spec, 1 << 20);
  const double t2 = gs::estimate_transfer_time(spec, 2 << 20);
  EXPECT_NEAR(t2 - t1,
              static_cast<double>(1 << 20) / (spec.pcie_bandwidth_gbps * 1e9),
              1e-12);
  EXPECT_DOUBLE_EQ(gs::estimate_transfer_time(spec, 0), spec.pcie_latency_s);
}

TEST(PerfModel, TableOneTransmissionMagnitude) {
  // Table I reports ~2.43 ms of CPU-GPU transmission at small star counts;
  // that traffic is two 4 MiB image copies plus a tiny star array. The
  // calibrated transfer model must land near it.
  const gs::DeviceSpec spec = gs::DeviceSpec::gtx480();
  const std::uint64_t image = 1024ull * 1024ull * 4ull;
  const double total = gs::estimate_transfer_time(spec, image) * 2 +
                       gs::estimate_transfer_time(spec, 32 * 16);
  EXPECT_NEAR(total, 2.43e-3, 0.5e-3);
}

}  // namespace
